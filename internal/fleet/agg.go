package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"fasttrack/internal/obs"
)

// Aggregator serves one merged HTTP view of a racedetectd fleet:
//
//	/fleet/nodes    — the tracker's per-node health/steering view
//	/fleet/sessions — every node's /sessions, node-attributed, one list
//	/fleet/metrics  — per-node /metrics merged via obs.MergeSnapshots,
//	                  with the per-node snapshots alongside
//
// The aggregator is a read-side fan-out, deliberately not a data-path
// proxy: sessions stream directly to their nodes (the client routes),
// so the aggregator can die, lag, or restart without touching a single
// analysis. It holds no state beyond the tracker's last probe — every
// request re-queries the live nodes, and a node that cannot be reached
// appears under "errors" with its last known health rather than
// silently vanishing from the merged view.
//
// Session payloads are merged as raw JSON objects, not typed structs:
// the daemon's SessionInfo schema belongs to internal/svc (which this
// package must not import — it sits below the client), and re-encoding
// through a local copy of the struct would silently drop fields added
// by newer daemons. The aggregator only injects a "node" attribution
// key when the daemon did not stamp one itself.
type Aggregator struct {
	tracker *Tracker
	nodes   []Node
	httpc   *http.Client
}

// NewAggregator builds an aggregator over the given nodes; every node
// needs an HTTP address (there is nothing to aggregate from a node
// without one). The tracker starts probing at probe intervals (<=0
// picks 1s); Close stops it.
func NewAggregator(nodes []Node, probe time.Duration) (*Aggregator, error) {
	for _, n := range nodes {
		if n.HTTP == "" {
			return nil, fmt.Errorf("fleet: aggregated node %s has no HTTP address (want addr=httpaddr)", n.Addr)
		}
	}
	if probe <= 0 {
		probe = time.Second
	}
	a := &Aggregator{
		tracker: New(nodes),
		nodes:   nodes,
		httpc:   &http.Client{Timeout: 3 * time.Second},
	}
	a.tracker.Start(probe)
	return a, nil
}

// Close stops the aggregator's health poller.
func (a *Aggregator) Close() { a.tracker.Stop() }

// Tracker exposes the aggregator's health tracker.
func (a *Aggregator) Tracker() *Tracker { return a.tracker }

// nodeGet fetches one path from one node's HTTP surface and decodes the
// JSON body into v. Non-2xx statuses with a decodable body still decode
// (the daemon's /readyz answers 503 with its state); transport and
// decode failures return the error.
func (a *Aggregator) nodeGet(ctx context.Context, httpAddr, path string, v any) error {
	url := httpAddr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+path, nil)
	if err != nil {
		return err
	}
	resp, err := a.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// nodeLabel is the attribution key for one node: its reported identity
// when the last probe captured one, else its dial address.
func nodeLabel(st Status) string {
	if st.NodeID != "" {
		return st.NodeID
	}
	return st.Addr
}

// fanOut queries one path on every node concurrently, delivering each
// node's decoded payload (or error) to collect under a lock.
func (a *Aggregator) fanOut(ctx context.Context, path string, decode func() any,
	collect func(st Status, payload any, err error)) {
	statuses := a.tracker.Nodes()
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for _, st := range statuses {
		wg.Add(1)
		go func(st Status) {
			defer wg.Done()
			v := decode()
			err := a.nodeGet(ctx, st.HTTP, path, v)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				collect(st, nil, err)
				return
			}
			collect(st, v, nil)
		}(st)
	}
	wg.Wait()
}

// Handler returns the aggregator's HTTP surface.
func (a *Aggregator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Nodes []Status `json:"nodes"`
		}{a.tracker.Nodes()})
	})
	mux.HandleFunc("GET /fleet/sessions", func(w http.ResponseWriter, r *http.Request) {
		type nodeErr struct {
			Node string `json:"node"`
			Err  string `json:"err"`
		}
		var (
			sessions []map[string]json.RawMessage
			errs     []nodeErr
		)
		a.fanOut(r.Context(), "/sessions", func() any { return &[]map[string]json.RawMessage{} },
			func(st Status, payload any, err error) {
				if err != nil {
					errs = append(errs, nodeErr{nodeLabel(st), err.Error()})
					return
				}
				for _, sess := range *payload.(*[]map[string]json.RawMessage) {
					if _, ok := sess["node"]; !ok {
						lbl, _ := json.Marshal(nodeLabel(st))
						sess["node"] = lbl
					}
					sessions = append(sessions, sess)
				}
			})
		sort.Slice(sessions, func(i, j int) bool {
			if n := strings.Compare(string(sessions[i]["node"]), string(sessions[j]["node"])); n != 0 {
				return n < 0
			}
			return string(sessions[i]["id"]) < string(sessions[j]["id"])
		})
		sort.Slice(errs, func(i, j int) bool { return errs[i].Node < errs[j].Node })
		if sessions == nil {
			sessions = []map[string]json.RawMessage{}
		}
		writeJSON(w, struct {
			Sessions []map[string]json.RawMessage `json:"sessions"`
			Errors   []nodeErr                    `json:"errors,omitempty"`
		}{sessions, errs})
	})
	mux.HandleFunc("GET /fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		perNode := map[string]obs.Snapshot{}
		nodeErrs := map[string]string{}
		a.fanOut(r.Context(), "/metrics", func() any { return &obs.Snapshot{} },
			func(st Status, payload any, err error) {
				if err != nil {
					nodeErrs[nodeLabel(st)] = err.Error()
					return
				}
				perNode[nodeLabel(st)] = *payload.(*obs.Snapshot)
			})
		merged := make([]obs.Snapshot, 0, len(perNode))
		// Deterministic merge order (map iteration is not): by label.
		labels := make([]string, 0, len(perNode))
		for l := range perNode {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			merged = append(merged, perNode[l])
		}
		writeJSON(w, struct {
			Fleet  obs.Snapshot            `json:"fleet"`
			Nodes  map[string]obs.Snapshot `json:"nodes"`
			Errors map[string]string       `json:"errors,omitempty"`
		}{obs.MergeSnapshots(merged...), perNode, nodeErrs})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, struct {
			Status string `json:"status"`
			Nodes  int    `json:"nodes"`
		}{"ok", len(a.nodes)})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
