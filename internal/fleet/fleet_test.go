package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestParseNodes(t *testing.T) {
	nodes, err := ParseNodes("a:1, b:2=b:3 ,c:4")
	if err != nil {
		t.Fatal(err)
	}
	want := []Node{{Addr: "a:1"}, {Addr: "b:2", HTTP: "b:3"}, {Addr: "c:4"}}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d", len(nodes), len(want))
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Errorf("node %d: got %+v want %+v", i, nodes[i], want[i])
		}
	}
	for _, bad := range []string{"", "  ,  ", "=x:1", "a:1,a:1"} {
		if _, err := ParseNodes(bad); err == nil {
			t.Errorf("ParseNodes(%q): want error, got nil", bad)
		}
	}
}

func addrs(n int) []Node {
	out := make([]Node, n)
	for i := range out {
		out[i] = Node{Addr: fmt.Sprintf("node-%d:7766", i)}
	}
	return out
}

// Rendezvous placement must spread keys roughly evenly: with 4 nodes
// and 4000 keys each node should own within [15%, 35%].
func TestRendezvousBalance(t *testing.T) {
	tr := New(addrs(4))
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		owner, ok := tr.Owner(fmt.Sprintf("session-%d", i))
		if !ok {
			t.Fatal("no owner")
		}
		counts[owner]++
	}
	if len(counts) != 4 {
		t.Fatalf("keys landed on %d nodes, want 4: %v", len(counts), counts)
	}
	for a, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("node %s owns %.1f%% of keys, want 15%%..35%% (%v)", a, frac*100, counts)
		}
	}
}

// The rendezvous property: removing one node moves only the keys it
// owned; every other key keeps its owner. Adding it back restores the
// original placement exactly.
func TestRendezvousStableUnderJoinLeave(t *testing.T) {
	all := addrs(5)
	tr5 := New(all)
	tr4 := New(all[:4]) // node-4 left
	const keys = 3000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("session-%d", i)
		before, _ := tr5.Owner(key)
		after, _ := tr4.Owner(key)
		if before == all[4].Addr {
			if after == before {
				t.Fatalf("key %s still routed to removed node", key)
			}
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %s moved %s -> %s though its owner never left", key, before, after)
		}
	}
	// ~1/5 of keys lived on the removed node; allow slack.
	if frac := float64(moved) / keys; frac < 0.10 || frac > 0.30 {
		t.Errorf("%.1f%% of keys moved on leave, want ~20%%", frac*100)
	}
	// Re-join: placement identical to the original 5-node ring.
	tr5b := New(all)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("session-%d", i)
		a, _ := tr5.Owner(key)
		b, _ := tr5b.Owner(key)
		if a != b {
			t.Fatalf("placement not deterministic for %s: %s vs %s", key, a, b)
		}
	}
}

// Route must rank every node exactly once, with the rendezvous owner
// first when everyone is healthy.
func TestRouteRanksAllNodes(t *testing.T) {
	tr := New(addrs(4))
	r := tr.Route("some-session")
	if len(r) != 4 {
		t.Fatalf("Route returned %d nodes, want 4", len(r))
	}
	seen := map[string]bool{}
	for _, a := range r {
		if seen[a] {
			t.Fatalf("Route repeated %s", a)
		}
		seen[a] = true
	}
	owner, _ := tr.Owner("some-session")
	if r[0] != owner {
		t.Fatalf("Route[0]=%s, Owner=%s", r[0], owner)
	}
}

// A refusal demotes the owner behind healthy nodes until the
// Retry-After window expires, then the original ranking returns.
func TestRefusalSteersThenExpires(t *testing.T) {
	tr := New(addrs(3))
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }

	key := "hot-session"
	owner, _ := tr.Owner(key)
	tr.MarkRefused(owner, 500*time.Millisecond)

	r := tr.Route(key)
	if r[0] == owner {
		t.Fatalf("refused node still ranked first")
	}
	if r[len(r)-1] != owner {
		t.Fatalf("refused node should rank behind healthy nodes: %v", r)
	}
	st := tr.Nodes()
	found := false
	for _, s := range st {
		if s.Addr == owner {
			found = true
			if s.RefusedUntil.IsZero() {
				t.Error("Status.RefusedUntil not set on refused node")
			}
		}
	}
	if !found {
		t.Fatal("refused node missing from Nodes()")
	}

	now = now.Add(time.Second) // backoff expired
	if got, _ := tr.Owner(key); got != owner {
		t.Fatalf("after backoff expiry owner=%s, want %s", got, owner)
	}
}

// MarkRefused with no hint applies the default backoff.
func TestRefusalDefaultBackoff(t *testing.T) {
	tr := New(addrs(2))
	now := time.Unix(1000, 0)
	tr.now = func() time.Time { return now }
	owner, _ := tr.Owner("k")
	tr.MarkRefused(owner, 0)
	if got, _ := tr.Owner("k"); got == owner {
		t.Fatal("refusal without hint did not steer")
	}
	now = now.Add(DefaultRefusalBackoff + time.Millisecond)
	if got, _ := tr.Owner("k"); got != owner {
		t.Fatal("default backoff never expired")
	}
}

// Down nodes rank last; MarkUp restores them.
func TestMarkDownUp(t *testing.T) {
	tr := New(addrs(3))
	key := "k"
	owner, _ := tr.Owner(key)
	tr.MarkDown(owner)
	r := tr.Route(key)
	if r[len(r)-1] != owner {
		t.Fatalf("down node not ranked last: %v", r)
	}
	tr.MarkUp(owner)
	if got, _ := tr.Owner(key); got != owner {
		t.Fatal("MarkUp did not restore the owner")
	}
}

// Even with every node unhealthy, Route still returns all of them
// (degrade to "any node that will have us", never fail closed).
func TestRouteNeverFailsClosed(t *testing.T) {
	tr := New(addrs(3))
	for _, n := range addrs(3) {
		tr.MarkDown(n.Addr)
	}
	if r := tr.Route("k"); len(r) != 3 {
		t.Fatalf("all-down Route returned %d nodes, want 3", len(r))
	}
}

// readyzStub serves a mutable Readyz payload like racedetectd does,
// including the not-ready 503 status.
type readyzStub struct {
	mu sync.Mutex
	rz Readyz
}

func (s *readyzStub) set(f func(*Readyz)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.rz)
}

func (s *readyzStub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/readyz" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	rz := s.rz
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if !rz.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(rz)
}

// Control-plane probing: draining and soft-limited nodes are steered
// away from while still reachable, and an unreachable node is marked
// down.
func TestProbeSteering(t *testing.T) {
	stubs := make([]*readyzStub, 3)
	nodes := make([]Node, 3)
	servers := make([]*httptest.Server, 3)
	for i := range stubs {
		stubs[i] = &readyzStub{rz: Readyz{Ready: true, MaxSessions: 8, Node: fmt.Sprintf("n%d", i)}}
		servers[i] = httptest.NewServer(stubs[i])
		defer servers[i].Close()
		nodes[i] = Node{
			Addr: fmt.Sprintf("dial-%d:7766", i),
			HTTP: strings.TrimPrefix(servers[i].URL, "http://"),
		}
	}
	tr := New(nodes)
	tr.PollOnce(context.Background())

	for _, st := range tr.Nodes() {
		if !st.Probed || st.Down || !st.Ready {
			t.Fatalf("healthy node misreported: %+v", st)
		}
		if st.NodeID == "" {
			t.Fatalf("node identity not captured: %+v", st)
		}
	}

	key := "steered-session"
	owner, _ := tr.Owner(key)
	var ownerIdx int
	for i, n := range nodes {
		if n.Addr == owner {
			ownerIdx = i
		}
	}

	// Owner drains: it must fall to the back of the ranking.
	stubs[ownerIdx].set(func(rz *Readyz) { rz.Ready = false; rz.Draining = true })
	tr.PollOnce(context.Background())
	r := tr.Route(key)
	if r[0] == owner || r[len(r)-1] != owner {
		t.Fatalf("draining owner not steered to last: %v", r)
	}

	// Recovery: back to first.
	stubs[ownerIdx].set(func(rz *Readyz) { rz.Ready = true; rz.Draining = false })
	tr.PollOnce(context.Background())
	if got, _ := tr.Owner(key); got != owner {
		t.Fatal("recovered owner not restored")
	}

	// Soft-limited owner is demoted behind unpressured nodes but stays
	// ahead of a refused node.
	stubs[ownerIdx].set(func(rz *Readyz) { rz.SoftLimited = true; rz.Shedding = true; rz.ShedSessions = 2 })
	tr.PollOnce(context.Background())
	other := ""
	for _, a := range tr.Route(key) {
		if a != owner {
			other = a
			break
		}
	}
	tr.MarkRefused(other, time.Minute)
	r = tr.Route(key)
	pos := map[string]int{}
	for i, a := range r {
		pos[a] = i
	}
	if pos[owner] == 0 {
		t.Fatalf("soft-limited owner still first: %v", r)
	}
	if pos[owner] > pos[other] {
		t.Fatalf("soft-limited node ranked behind refused node: %v", r)
	}
	st := tr.Nodes()
	for _, s := range st {
		if s.Addr == owner && (!s.SoftLimited || !s.Shedding || s.ShedSessions != 2) {
			t.Fatalf("shed state not captured: %+v", s)
		}
	}

	// Kill one server entirely: probe marks it down.
	servers[ownerIdx].Close()
	tr.PollOnce(context.Background())
	for _, s := range tr.Nodes() {
		if s.Addr == owner && !s.Down {
			t.Fatalf("unreachable node not marked down: %+v", s)
		}
	}
}

// Start/Stop runs the poller in the background without leaking.
func TestStartStop(t *testing.T) {
	stub := &readyzStub{rz: Readyz{Ready: true}}
	srv := httptest.NewServer(stub)
	defer srv.Close()
	tr := New([]Node{{Addr: "a:1", HTTP: strings.TrimPrefix(srv.URL, "http://")}})
	tr.Start(10 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if sts := tr.Nodes(); sts[0].Probed && sts[0].Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never probed")
		}
		time.Sleep(time.Millisecond)
	}
	tr.Stop()
	tr.Stop() // idempotent
}
