package fasttrack

import (
	"sync"
	"testing"

	"fasttrack/trace"
)

// TestMonitorConcurrentStress hammers one monitor from many goroutines
// (run with -race to also check the monitor's own synchronization): a
// mix of lock-protected shared work and thread-private work must stay
// silent, and the statistics must account for every event.
func TestMonitorConcurrentStress(t *testing.T) {
	m := NewMonitor(WithHints(Hints{Threads: 9, Vars: 256}))
	const (
		workers = 8
		iters   = 200
		lockID  = 1
		shared  = 0
	)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		m.Fork(0, int32(w))
	}
	for w := 1; w <= workers; w++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			private := uint64(100 + tid)
			for i := 0; i < iters; i++ {
				m.Write(tid, private)
				m.Read(tid, private)
				mu.Lock()
				m.Acquire(tid, lockID)
				m.Read(tid, shared)
				m.Write(tid, shared)
				m.Release(tid, lockID)
				mu.Unlock()
			}
		}(int32(w))
	}
	wg.Wait()
	for w := 1; w <= workers; w++ {
		m.Join(0, int32(w))
	}
	m.Read(0, shared)

	if races := m.Races(); len(races) != 0 {
		t.Fatalf("false alarms under stress: %v", races)
	}
	st := m.Stats()
	wantAccesses := int64(workers*iters*4 + 1)
	if st.Reads+st.Writes != wantAccesses {
		t.Errorf("accesses = %d, want %d", st.Reads+st.Writes, wantAccesses)
	}
}

// TestMonitorGranularityOption: the Coarse option folds fields and can
// produce the documented spurious warnings.
func TestMonitorGranularityOption(t *testing.T) {
	m := NewMonitor(WithGranularity(Coarse))
	m.Fork(0, 1)
	// Fields 0 and 1 share an object; each has its own lock.
	m.Acquire(0, 100)
	m.Write(0, 0)
	m.Release(0, 100)
	m.Acquire(1, 200)
	m.Write(1, 1)
	m.Release(1, 200)
	if races := m.Races(); len(races) == 0 {
		t.Error("coarse monitor should warn on same-object fields")
	}
}

// TestMonitorTxMarkersReachTool: atomicity checkers behind a Monitor see
// transaction boundaries.
func TestMonitorTxMarkersReachTool(t *testing.T) {
	rec := NewRecorder()
	m := NewMonitor(WithTool(rec))
	m.TxBegin(0)
	m.Write(0, 1)
	m.TxEnd(0)
	tr := rec.Trace()
	if len(tr) != 3 || tr[0].Kind != trace.TxBegin || tr[2].Kind != trace.TxEnd {
		t.Errorf("recorded %v", tr)
	}
}

// TestMonitorVelodromeOnline: a full atomicity checker runs online
// behind the monitor.
func TestMonitorVelodromeOnline(t *testing.T) {
	vd, err := NewTool("Velodrome", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(WithTool(vd))
	m.Fork(0, 1)
	m.TxBegin(0)
	m.Read(0, 1)  // t0's txn reads x
	m.Write(1, 1) // t1 writes x
	m.Write(0, 1) // t0 writes x: cycle
	m.TxEnd(0)
	if races := m.Races(); len(races) != 1 {
		t.Errorf("races = %v, want one atomicity violation", races)
	}
}
