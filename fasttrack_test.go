package fasttrack

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"fasttrack/trace"
)

func TestToolNamesAndNewTool(t *testing.T) {
	names := ToolNames()
	want := []string{"Atomizer", "BasicVC", "DJIT+", "Empty", "Eraser", "FastTrack",
		"Goldilocks", "Goodlock", "MultiRace", "SingleTrack", "TL", "Velodrome", "WriteEpochsOnly"}
	if len(names) != len(want) {
		t.Fatalf("ToolNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("ToolNames = %v, want %v", names, want)
		}
	}
	for _, n := range names {
		tool, err := NewTool(n, Hints{Threads: 4, Vars: 16})
		if err != nil {
			t.Errorf("NewTool(%q): %v", n, err)
			continue
		}
		if n != "TL" && n != "Empty" && tool.Name() != n {
			t.Errorf("NewTool(%q).Name() = %q", n, tool.Name())
		}
	}
	if _, err := NewTool("nope", Hints{}); err == nil {
		t.Error("NewTool must reject unknown names")
	} else if !strings.Contains(err.Error(), "nope") {
		t.Errorf("error %q should name the unknown tool", err)
	}
}

func TestReplayFindsRace(t *testing.T) {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 3),
		trace.Wr(1, 3),
	}
	tool, err := NewTool("FastTrack", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	races := Replay(tr, tool, Fine)
	if len(races) != 1 || races[0].Var != 3 || races[0].Kind != WriteWrite {
		t.Errorf("races = %v", races)
	}
}

func TestReplayCoarseGranularityFalseAlarm(t *testing.T) {
	// Variables 0 and 1 fold into the same shadow object under Coarse.
	// Each is protected by its own lock — a fine analysis is silent, the
	// coarse one warns (the "two fields protected by different locks"
	// example of Section 4).
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1))
	for i := 0; i < 4; i++ {
		tr = append(tr,
			trace.Acq(0, 100), trace.Wr(0, 0), trace.Rel(0, 100),
			trace.Acq(1, 200), trace.Wr(1, 1), trace.Rel(1, 200),
		)
	}
	fine, _ := NewTool("FastTrack", Hints{})
	if races := Replay(tr, fine, Fine); len(races) != 0 {
		t.Errorf("fine-grain false alarm: %v", races)
	}
	coarse, _ := NewTool("FastTrack", Hints{})
	if races := Replay(tr, coarse, Coarse); len(races) == 0 {
		t.Error("coarse-grain analysis should produce a (spurious) warning")
	}
}

func TestMonitorDetectsRaceAcrossGoroutines(t *testing.T) {
	m := NewMonitor()
	const counter = 1
	m.Fork(0, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		m.Read(1, counter)
		m.Write(1, counter)
	}()
	m.Read(0, counter)
	m.Write(0, counter)
	wg.Wait()
	m.Join(0, 1)
	if races := m.Races(); len(races) == 0 {
		t.Error("monitor missed the unsynchronized counter race")
	}
}

func TestMonitorLockedCounterIsSilent(t *testing.T) {
	m := NewMonitor()
	const counter, lock = 1, 9
	m.Fork(0, 1)
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	body := func(tid int32) {
		for i := 0; i < 100; i++ {
			mu.Lock()
			m.Acquire(tid, lock)
			m.Read(tid, counter)
			m.Write(tid, counter)
			m.Release(tid, lock)
			mu.Unlock()
		}
	}
	go func() {
		defer wg.Done()
		body(1)
	}()
	body(0)
	wg.Wait()
	m.Join(0, 1)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarm on locked counter: %v", races)
	}
	if st := m.Stats(); st.Events == 0 {
		t.Error("stats should count events")
	}
}

func TestMonitorRaceHandlerFires(t *testing.T) {
	var got []Report
	m := NewMonitor(WithRaceHandler(func(r Report) { got = append(got, r) }))
	m.Fork(0, 1)
	m.Write(0, 7)
	m.Write(1, 7)
	if len(got) != 1 || got[0].Var != 7 {
		t.Errorf("handler got %v", got)
	}
}

func TestMonitorReentrantLocksFiltered(t *testing.T) {
	m := NewMonitor()
	m.Fork(0, 1)
	// Thread 0 acquires the lock re-entrantly; the inner pair must be
	// ignored, so the release at depth 1 publishes to thread 1.
	m.Acquire(0, 5)
	m.Acquire(0, 5) // re-entrant
	m.Write(0, 1)
	m.Release(0, 5) // re-entrant
	m.Release(0, 5)
	m.Acquire(1, 5)
	m.Read(1, 1)
	m.Release(1, 5)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarm with re-entrant locking: %v", races)
	}
}

func TestMonitorWaitNotify(t *testing.T) {
	// Producer/consumer via wait/notify: the waiter's wake-up
	// re-acquisition orders its read after the producer's critical
	// section, so the handoff is race-free.
	m := NewMonitor()
	m.Fork(0, 1)
	m.Acquire(1, 5)
	m.WaitBegin(1, 5) // releases lock 5, thread 1 blocks
	m.Acquire(0, 5)
	m.Write(0, 1)
	m.Notify(0, 5)
	m.Release(0, 5)
	m.WaitEnd(1, 5) // thread 1 wakes up, re-acquiring lock 5
	m.Read(1, 1)
	m.Release(1, 5)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarm with wait/notify: %v", races)
	}

	// Without the producer's release-before-wakeup ordering (consumer
	// reads outside the monitor before waiting) there is a race.
	m2 := NewMonitor()
	m2.Fork(0, 1)
	m2.Read(1, 1)
	m2.Write(0, 1)
	if races := m2.Races(); len(races) != 1 {
		t.Errorf("races = %v, want 1", m2.Races())
	}
}

func TestMonitorWithDetectorEraser(t *testing.T) {
	m := NewMonitor(WithDetector("Eraser"), WithHints(Hints{Threads: 2, Vars: 4}))
	m.Fork(0, 1)
	m.Write(0, 1)
	m.Write(1, 1)
	races := m.Races()
	if len(races) != 1 || races[0].Kind != LockSetViolation {
		t.Errorf("races = %v", races)
	}
}

func TestMonitorUnknownDetectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown detector")
		}
	}()
	NewMonitor(WithDetector("bogus"))
}

func TestComposePipeline(t *testing.T) {
	pre, err := NewTool("FastTrack", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	back, err := NewTool("Empty", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	pipe := Compose(pre.(Prefilter), back)
	if pipe.Name() != "FastTrack:Empty" {
		t.Errorf("Name = %q", pipe.Name())
	}
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 3),
		trace.Wr(0, 3),
		trace.Wr(1, 3), // race: passes downstream
	}
	Replay(tr, pipe, Fine)
	// The back end sees: fork + the racing write (race-free writes are
	// filtered out).
	if st := back.Stats(); st.Writes != 1 {
		t.Errorf("back end saw %d writes, want 1", st.Writes)
	}
}

func TestRecordThenReplay(t *testing.T) {
	// Record a live session through a Tee that simultaneously runs
	// FastTrack, then replay the recorded trace through Eraser.
	rec := NewRecorder()
	ft, err := NewTool("FastTrack", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(WithTool(Tee(rec, ft)))
	m.Fork(0, 1)
	m.Write(0, 5)
	m.Write(1, 5)
	if races := m.Races(); len(races) != 1 {
		t.Fatalf("live races = %v", races)
	}
	recorded := rec.Trace()
	if len(recorded) != 3 {
		t.Fatalf("recorded %d events, want 3", len(recorded))
	}
	er, err := NewTool("Eraser", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	if races := Replay(recorded, er, Fine); len(races) != 1 {
		t.Errorf("replayed Eraser races = %v", races)
	}
}

func TestStreamRecorderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rec := NewStreamRecorder(&buf, trace.Binary)
	ft, _ := NewTool("FastTrack", Hints{})
	m := NewMonitor(WithTool(Tee(rec, ft)))
	m.Fork(0, 1)
	m.Write(0, 5)
	m.Write(1, 5)
	if err := rec.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Err() != nil {
		t.Fatal(rec.Err())
	}
	// Stream the recorded bytes back through another detector.
	dj, _ := NewTool("DJIT+", Hints{})
	races, events, err := ReplayStream(&buf, dj, Fine, true)
	if err != nil {
		t.Fatal(err)
	}
	if events != 3 || len(races) != 1 {
		t.Errorf("events=%d races=%v", events, races)
	}
}

func TestReplayStreamValidates(t *testing.T) {
	in := "rel 0 m1\n"
	tool, _ := NewTool("FastTrack", Hints{})
	_, _, err := ReplayStream(strings.NewReader(in), tool, Fine, true)
	if err == nil {
		t.Error("infeasible stream must fail validation")
	}
	tool2, _ := NewTool("FastTrack", Hints{})
	_, events, err := ReplayStream(strings.NewReader(in), tool2, Fine, false)
	if err != nil || events != 1 {
		t.Errorf("unvalidated stream: events=%d err=%v", events, err)
	}
}

func TestDetailedReportsViaHints(t *testing.T) {
	tool, err := NewTool("FastTrack", Hints{DetailedReports: true})
	if err != nil {
		t.Fatal(err)
	}
	races := Replay(trace.Trace{
		trace.ForkOf(0, 1),
		trace.Wr(0, 5),
		trace.Wr(1, 5),
	}, tool, Fine)
	if len(races) != 1 || races[0].PrevIndex != 1 {
		t.Errorf("races = %v, want PrevIndex 1", races)
	}
}

func TestMonitorVolatileAndBarrier(t *testing.T) {
	m := NewMonitor()
	m.Fork(0, 1)
	m.Write(0, 1)
	m.VolatileWrite(0, 0)
	m.VolatileRead(1, 0)
	m.Read(1, 1)
	m.Write(1, 2)
	m.BarrierRelease(0, 0, 1)
	m.Read(0, 2)
	m.TxBegin(0)
	m.Write(0, 3)
	m.TxEnd(0)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}
