package fasttrack

import (
	"fmt"
	"io"
	"sort"

	"fasttrack/internal/atomicity"
	"fasttrack/internal/core"
	"fasttrack/internal/detectors/basicvc"
	"fasttrack/internal/detectors/djit"
	"fasttrack/internal/detectors/empty"
	"fasttrack/internal/detectors/epochwr"
	"fasttrack/internal/detectors/eraser"
	"fasttrack/internal/detectors/goldilocks"
	"fasttrack/internal/detectors/goodlock"
	"fasttrack/internal/detectors/multirace"
	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// Tool is a back-end dynamic analysis consuming an event stream; all
// seven detectors of the paper's evaluation implement it. Tools are not
// safe for concurrent use — wrap one in a Monitor for live programs.
type Tool = rr.Tool

// ShardedTool is a Tool whose access handlers are additionally safe
// under the Monitor's stripe-locking discipline, enabling WithShards.
// The FastTrack detector implements it; see the rr package for the
// contract a custom implementation must meet.
type ShardedTool = rr.ShardedTool

// Prefilter is a Tool that can filter events for a downstream analysis
// (Section 5.2 of the paper).
type Prefilter = rr.Prefilter

// Sampled is a Tool with a runtime-adjustable sampling tier: a
// deterministic fraction of the variable space is analyzed at full
// fidelity and the rest is counted but not checked. FastTrack implements
// it; see the rr package for the soundness contract (sampled races are
// always a subset of the full run's) and Stats.DetectionProbability for
// the coverage it cost.
type Sampled = rr.Sampled

// Report is one race warning.
type Report = rr.Report

// DetailedReport is a race warning enriched by the provenance flight
// recorder (Hints.Provenance): vector-clock snapshots of both accesses,
// the exact happens-before comparison that failed, the racing threads'
// recent release/acquire chains, and a rendered "why this is a race"
// explanation. See Monitor.DetailedRaces.
type DetailedReport = rr.DetailedReport

// SyncRecord is one entry of a DetailedReport's sync chain: a recent
// synchronization operation of one of the racing threads.
type SyncRecord = rr.SyncRecord

// Stats are a tool's instrumentation counters (vector clocks allocated,
// O(n) vector-clock operations, per-rule hit counts, shadow bytes).
type Stats = rr.Stats

// RaceKind classifies a warning.
type RaceKind = rr.RaceKind

// Race kinds.
const (
	WriteWrite       = rr.WriteWrite
	WriteRead        = rr.WriteRead
	ReadWrite        = rr.ReadWrite
	LockSetViolation = rr.LockSetViolation
)

// Granularity selects fine (per-variable) or coarse (per-object) shadow
// locations; see the paper's Section 4 and Table 3.
type Granularity = rr.Granularity

// Granularities.
const (
	Fine   = rr.Fine
	Coarse = rr.Coarse
)

// FieldsPerObject is the coarse-granularity grouping factor.
const FieldsPerObject = rr.FieldsPerObject

// Policy selects how the event pipeline responds to malformed streams:
// ignore the problem (PolicyOff, the default, which still intercepts
// releases with no matching acquire), stop at the first violation
// (PolicyStrict), synthesize the missing protocol events and continue
// (PolicyRepair), or skip offending events (PolicyDrop). See the rr
// package for the exact checks.
type Policy = rr.Policy

// Validation policies.
const (
	PolicyOff    = rr.PolicyOff
	PolicyStrict = rr.PolicyStrict
	PolicyRepair = rr.PolicyRepair
	PolicyDrop   = rr.PolicyDrop
)

// Health is a degradation snapshot of an analysis pipeline: recovered
// tool panics, quarantined shadow locations, and stream-validation
// accounting. A fully healthy pipeline has Healthy == true.
type Health = rr.Health

// MetricsSnapshot is a point-in-time copy of a pipeline's metrics
// registry: counters, gauges, and histograms keyed by name (rr.* for
// the dispatcher's live pipeline metrics, tool.* for the detector's
// counters). It marshals to stable JSON; see Monitor.Metrics.
type MetricsSnapshot = obs.Snapshot

// Hints carries optional capacity hints and feature toggles for a
// detector; zero values are fine.
type Hints struct {
	Threads int
	Vars    int
	// DetailedReports makes FastTrack track per-variable access history
	// so reports carry PrevIndex (the prior racing access's event
	// position). Other detectors ignore it.
	DetailedReports bool
	// Provenance enables FastTrack's flight recorder (implying
	// DetailedReports): bounded per-thread rings of recent sync
	// operations plus a per-variable last-access record, so each race is
	// enriched into a DetailedReport explaining why happens-before
	// failed. Costs roughly one vector-clock copy per non-redundant
	// access while enabled (see BENCH_provenance.json); other detectors
	// ignore it.
	Provenance bool
	// MemoryBudget caps FastTrack's shadow-memory footprint at the given
	// number of bytes. Under pressure the detector degrades precision
	// instead of growing: read vector clocks are squeezed back to epochs
	// first, then new locations fall back to coarse (per-object)
	// shadowing. Degradation is counted in Stats.MemSqueezes and
	// Stats.MemCoarse. Zero means unbounded; other detectors ignore it.
	MemoryBudget int64
	// SampleRate starts FastTrack's sampling tier at the given rate in
	// (0, 1): only that fraction of the variable space receives full
	// analysis (see Sampled). Zero (and anything ≥ 1) means full
	// fidelity; other detectors ignore it. The rate can be changed later
	// through Monitor.SetSamplingRate.
	SampleRate float64
}

// toolMakers maps canonical tool names to constructors.
var toolMakers = map[string]func(h Hints) Tool{
	"FastTrack": func(h Hints) Tool {
		d := core.New(h.Threads, h.Vars)
		if h.DetailedReports {
			d.EnableDetailedReports()
		}
		if h.Provenance {
			d.EnableProvenance()
		}
		if h.MemoryBudget > 0 {
			d.SetMemoryBudget(h.MemoryBudget)
		}
		if h.SampleRate > 0 && h.SampleRate < 1 {
			d.SetSamplingRate(h.SampleRate)
		}
		return d
	},
	"DJIT+":      func(h Hints) Tool { return djit.New(h.Threads, h.Vars) },
	"BasicVC":    func(h Hints) Tool { return basicvc.New(h.Threads, h.Vars) },
	"Eraser":     func(h Hints) Tool { return eraser.New(h.Threads, h.Vars) },
	"MultiRace":  func(h Hints) Tool { return multirace.New(h.Threads, h.Vars) },
	"Goldilocks": func(h Hints) Tool { return goldilocks.New(h.Threads, h.Vars) },
	"Empty":      func(h Hints) Tool { return empty.New() },
	// WriteEpochsOnly is the Section 3 intermediate design point (write
	// epochs, non-adaptive read vector clocks) kept as an ablation.
	"WriteEpochsOnly": func(h Hints) Tool { return epochwr.New(h.Threads, h.Vars) },
	"TL":              func(h Hints) Tool { return empty.NewTL(h.Vars) },
	// The Section 5.2 downstream checkers are Tools too: they consume
	// TxBegin/TxEnd transaction markers (emitted by the workload
	// generators and the mini language's atomic blocks).
	// Goodlock is the lock-order (potential deadlock) analysis.
	"Goodlock":    func(h Hints) Tool { return goodlock.New(h.Threads, h.Vars) },
	"Atomizer":    func(h Hints) Tool { return atomicity.NewAtomizer() },
	"Velodrome":   func(h Hints) Tool { return atomicity.NewVelodrome() },
	"SingleTrack": func(h Hints) Tool { return atomicity.NewSingleTrack() },
}

// ToolNames returns the canonical names accepted by NewTool, sorted.
func ToolNames() []string {
	names := make([]string, 0, len(toolMakers))
	for n := range toolMakers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// NewTool constructs a detector by name. Recognized names are those
// returned by ToolNames: "FastTrack", "DJIT+", "BasicVC", "Eraser",
// "MultiRace", "Goldilocks", "Empty", and the "TL" thread-local
// prefilter.
func NewTool(name string, h Hints) (Tool, error) {
	mk, ok := toolMakers[name]
	if !ok {
		return nil, fmt.Errorf("fasttrack: unknown tool %q (have %v)", name, ToolNames())
	}
	return mk(h), nil
}

// Compose chains a prefilter tool in front of a downstream tool, the
// analog of RoadRunner's "-tool FastTrack:Velodrome" (Section 5.2). The
// prefilter must be one of the Prefilter-capable tools ("FastTrack",
// "DJIT+", "Eraser", "TL").
func Compose(pre Prefilter, back Tool) Tool {
	return &rr.Pipeline{Pre: pre, Back: back}
}

// Recorder is a Tool that captures the event stream it is fed; pair it
// with Tee and a Monitor to record a live program's trace for later
// replay through other detectors or for writing with the trace codecs.
type Recorder = rr.Recorder

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return rr.NewRecorder() }

// Tee fans one event stream out to several tools, running multiple
// analyses in a single pass.
func Tee(tools ...Tool) Tool { return rr.NewTee(tools...) }

// StreamRecorder is a Tool that encodes the event stream directly to a
// trace.Writer; see NewStreamRecorder.
type StreamRecorder = rr.StreamRecorder

// NewStreamRecorder returns a Tool that writes every event to w in the
// given trace format, without buffering the trace in memory. Call its
// Flush method when monitoring ends.
func NewStreamRecorder(w io.Writer, format trace.Format) *StreamRecorder {
	return rr.NewStreamRecorder(trace.NewWriter(w, format))
}

// Replay feeds a recorded trace through a tool at the given granularity,
// applying the framework services (re-entrant lock filtering, wait
// expansion), and returns the tool's warnings.
func Replay(tr trace.Trace, tool Tool, g Granularity) []Report {
	d := rr.NewDispatcher(tool)
	d.Granularity = g
	d.Feed(tr)
	return tool.Races()
}

// ReplayResilient feeds a trace through a tool with the resilience layer
// engaged: events are validated under the given policy (repaired,
// dropped, or — under PolicyStrict — rejected, stopping the stream) and
// tool panics are quarantined instead of propagating. It returns the
// warnings and a degradation snapshot; under PolicyStrict the first
// violation is in Health.Err.
func ReplayResilient(tr trace.Trace, tool Tool, g Granularity, p Policy) ([]Report, Health) {
	d := rr.NewDispatcher(tool)
	d.Granularity = g
	d.Policy = p
	d.Feed(tr)
	return tool.Races(), d.Health()
}

// ReplayStream analyzes a trace incrementally from a reader (text or
// binary format, auto-detected) without materializing it in memory.
// When validate is true each event is also checked against the
// feasibility constraints of the paper's Section 2.1 before analysis.
// It returns the tool's warnings and the number of events processed.
func ReplayStream(r io.Reader, tool Tool, g Granularity, validate bool) ([]Report, int, error) {
	d := rr.NewDispatcher(tool)
	d.Granularity = g
	sc := trace.NewScanner(r)
	var v *trace.Validator
	if validate {
		v = trace.NewValidator()
	}
	for sc.Scan() {
		e := sc.Event()
		if v != nil {
			if err := v.Event(e); err != nil {
				return tool.Races(), sc.Index() - 1, err
			}
		}
		d.Event(e)
	}
	return tool.Races(), sc.Index(), sc.Err()
}
