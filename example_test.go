package fasttrack_test

import (
	"fmt"
	"strings"

	"fasttrack"
	"fasttrack/syncmodel"
	"fasttrack/trace"
)

// The canonical two-goroutine race, caught online by the Monitor.
func ExampleNewMonitor() {
	m := fasttrack.NewMonitor()
	const counter = 1
	m.Fork(0, 1) // thread 0 starts thread 1
	m.Write(0, counter)
	m.Write(1, counter) // concurrent with thread 0's write
	for _, r := range m.Races() {
		fmt.Println(r)
	}
	// Output:
	// write-write race on x1: thread 1 conflicts with thread 0 (event 2)
}

// Replay a recorded trace through any of the paper's detectors.
func ExampleReplay() {
	tr := trace.Trace{
		trace.ForkOf(0, 1),
		trace.Acq(0, 9), trace.Wr(0, 5), trace.Rel(0, 9),
		trace.Acq(1, 9), trace.Rd(1, 5), trace.Rel(1, 9), // lock-ordered: fine
		trace.Rd(1, 6), trace.Wr(0, 6), // unsynchronized: race
	}
	tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	for _, r := range fasttrack.Replay(tr, tool, fasttrack.Fine) {
		fmt.Println(r)
	}
	// Output:
	// read-write race on x6: thread 0 conflicts with thread 1 (event 8)
}

// Imprecise detectors disagree with precise ones on fork-join code —
// the paper's Table 1 in miniature.
func ExampleNewTool() {
	handoff := trace.Trace{
		trace.Wr(0, 1),
		trace.ForkOf(0, 1),
		trace.Wr(1, 1), // ordered by the fork: race-free
	}
	for _, name := range []string{"FastTrack", "Eraser"} {
		tool, _ := fasttrack.NewTool(name, fasttrack.Hints{})
		races := fasttrack.Replay(handoff, tool, fasttrack.Fine)
		fmt.Printf("%s: %d warning(s)\n", name, len(races))
	}
	// Output:
	// FastTrack: 0 warning(s)
	// Eraser: 1 warning(s)
}

// Compose chains FastTrack as a prefilter before a heavyweight
// downstream analysis (Section 5.2 of the paper).
func ExampleCompose() {
	pre, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	back, _ := fasttrack.NewTool("Velodrome", fasttrack.Hints{})
	pipeline := fasttrack.Compose(pre.(fasttrack.Prefilter), back)
	fmt.Println(pipeline.Name())
	// Output:
	// FastTrack:Velodrome
}

// Record a live session and replay it later through a second detector.
func ExampleNewRecorder() {
	rec := fasttrack.NewRecorder()
	ft, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	m := fasttrack.NewMonitor(fasttrack.WithTool(fasttrack.Tee(rec, ft)))
	m.Fork(0, 1)
	m.Write(0, 5)
	m.Write(1, 5)

	dj, _ := fasttrack.NewTool("DJIT+", fasttrack.Hints{})
	races := fasttrack.Replay(rec.Trace(), dj, fasttrack.Fine)
	fmt.Printf("recorded %d events; DJIT+ agrees: %d race\n", len(rec.Trace()), len(races))
	// Output:
	// recorded 3 events; DJIT+ agrees: 1 race
}

// Structured goroutine handles assign thread ids automatically.
func ExampleMonitor_MainThread() {
	m := fasttrack.NewMonitor()
	main := m.MainThread()
	main.Write(1)
	child := main.Go(func(t *fasttrack.Thread) {
		t.Read(1) // ordered by the fork
	})
	main.Join(child)
	fmt.Println("races:", len(m.Races()))
	// Output:
	// races: 0
}

// High-level primitives from syncmodel reduce to the detector's base
// operations.
func ExampleNewMonitor_syncmodel() {
	m := fasttrack.NewMonitor()
	rw := syncmodel.NewRWMutex(m, 1)
	m.Fork(0, 1)
	rw.Lock(0)
	m.Write(0, 5)
	rw.Unlock(0)
	rw.RLock(1)
	m.Read(1, 5)
	rw.RUnlock(1)
	fmt.Println("races:", len(m.Races()))
	// Output:
	// races: 0
}

// Streaming analysis without materializing the trace.
func ExampleReplayStream() {
	text := `fork 0 1
wr 0 x5
rd 1 x5
`
	tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
	races, events, _ := fasttrack.ReplayStream(strings.NewReader(text), tool, fasttrack.Fine, true)
	fmt.Printf("%d events, %d race\n", events, len(races))
	// Output:
	// 3 events, 1 race
}
