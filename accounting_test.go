package fasttrack

import (
	"bytes"
	"math/rand"
	"testing"

	"fasttrack/internal/chaos"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// taxonomyComplete lists the detectors whose per-rule counters
// attribute every memory access to exactly one instrumentation rule, so
// the rule counts must sum back to the access totals.
var taxonomyComplete = map[string]bool{
	"FastTrack":       true,
	"DJIT+":           true,
	"BasicVC":         true,
	"WriteEpochsOnly": true,
	"MultiRace":       true,
}

// checkAccounting asserts the operation-accounting invariants between a
// tool's Stats and the dispatcher's ground-truth delivered counters:
// the tool counted exactly the reads, writes, and synchronization
// events the dispatcher actually handed to it, the per-kind sync
// counters sum to the sync total, and — for the taxonomy-complete
// detectors — the fast-path and slow-path rule counters sum exactly to
// the access totals.
func checkAccounting(t *testing.T, label string, d *rr.Dispatcher, st Stats) {
	t.Helper()
	if got, want := st.Reads, d.Delivered(trace.Read); got != want {
		t.Errorf("%s: tool counted %d reads, dispatcher delivered %d", label, got, want)
	}
	if got, want := st.Writes, d.Delivered(trace.Write); got != want {
		t.Errorf("%s: tool counted %d writes, dispatcher delivered %d", label, got, want)
	}
	if got, want := st.Syncs, d.DeliveredSyncs(); got != want {
		t.Errorf("%s: tool counted %d syncs, dispatcher delivered %d", label, got, want)
	}
	if got := st.SyncKindSum(); got != st.Syncs {
		t.Errorf("%s: per-kind sync counters sum to %d, Syncs = %d", label, got, st.Syncs)
	}
	if got, want := st.Markers, d.Delivered(trace.TxBegin)+d.Delivered(trace.TxEnd); got != want {
		t.Errorf("%s: tool counted %d markers, dispatcher delivered %d", label, got, want)
	}

	name := label
	if i := bytes.IndexByte([]byte(label), '/'); i >= 0 {
		name = label[:i]
	}
	if !taxonomyComplete[name] {
		return
	}
	readRules := st.ReadSameEpoch + st.ReadShared + st.ReadExclusive + st.ReadShare + st.ReadOwned
	if readRules != st.Reads {
		t.Errorf("%s: read rules sum to %d (sameEpoch=%d shared=%d exclusive=%d share=%d owned=%d), Reads = %d",
			label, readRules, st.ReadSameEpoch, st.ReadShared, st.ReadExclusive, st.ReadShare, st.ReadOwned, st.Reads)
	}
	writeRules := st.WriteSameEpoch + st.WriteExclusive + st.WriteShared + st.WriteOwned
	if writeRules != st.Writes {
		t.Errorf("%s: write rules sum to %d (sameEpoch=%d exclusive=%d shared=%d owned=%d), Writes = %d",
			label, writeRules, st.WriteSameEpoch, st.WriteExclusive, st.WriteShared, st.WriteOwned, st.Writes)
	}
}

// TestAccountingSim: over clean simulated workloads, every registered
// detector's counters must agree exactly with the dispatcher's
// delivered-event ground truth.
func TestAccountingSim(t *testing.T) {
	benchs := sim.Benchmarks()[:3]
	for _, b := range benchs {
		tr := b.Trace(0.1)
		for _, name := range ToolNames() {
			tool, err := NewTool(name, Hints{Threads: b.Threads})
			if err != nil {
				t.Fatalf("NewTool(%q): %v", name, err)
			}
			d := rr.NewDispatcher(tool)
			d.Feed(tr)
			if h := d.Health(); h.Panics != 0 {
				t.Fatalf("%s/%s: %d panics on a clean trace", name, b.Name, h.Panics)
			}
			checkAccounting(t, name+"/"+b.Name, d, tool.Stats())
		}
	}
}

// TestUnheldReleaseAccounting: an intercepted unheld release is its own
// Stats field. Folding it into Dropped used to break the documented
// Violations == Repaired + Dropped invariant under PolicyOff, where the
// interception happens without any validator violation being recorded.
func TestUnheldReleaseAccounting(t *testing.T) {
	m := NewMonitor()
	m.Acquire(0, 5)
	m.Release(0, 5)
	m.Release(0, 5) // no matching acquire: intercepted, not forwarded
	m.Write(0, 1)

	st := m.Stats()
	if st.UnheldReleases != 1 {
		t.Errorf("UnheldReleases = %d, want 1", st.UnheldReleases)
	}
	if st.Violations != 0 || st.Repaired != 0 || st.Dropped != 0 {
		t.Errorf("validator counters must stay zero under PolicyOff: violations=%d repaired=%d dropped=%d",
			st.Violations, st.Repaired, st.Dropped)
	}
	if st.Violations != st.Repaired+st.Dropped {
		t.Errorf("invariant broken: Violations=%d != Repaired+Dropped=%d",
			st.Violations, st.Repaired+st.Dropped)
	}
	if st.Releases != 1 {
		t.Errorf("tool saw %d releases, want 1 (the held one)", st.Releases)
	}

	// Under a validating policy the validator handles the malformed
	// release instead, and the invariant still holds with the new field
	// staying zero.
	mv := NewMonitor(WithValidation(PolicyRepair))
	mv.Acquire(0, 5)
	mv.Release(0, 5)
	mv.Release(0, 5)
	stv := mv.Stats()
	if stv.UnheldReleases != 0 {
		t.Errorf("PolicyRepair: UnheldReleases = %d, want 0 (validator repaired it first)", stv.UnheldReleases)
	}
	if stv.Violations != stv.Repaired+stv.Dropped {
		t.Errorf("PolicyRepair: invariant broken: Violations=%d != Repaired+Dropped=%d",
			stv.Violations, stv.Repaired+stv.Dropped)
	}
	if stv.Violations == 0 {
		t.Error("PolicyRepair: the unheld release must be recorded as a violation")
	}
}

// TestAccountingChaos: the invariants must survive corrupted streams.
// Under PolicyRepair no registered detector panics (the chaos harness's
// own contract), so the delivered counters remain an exact ground
// truth even while the validator is repairing the stream.
func TestAccountingChaos(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(42)), sim.DefaultRandomConfig())
	for _, name := range ToolNames() {
		for _, mode := range chaos.Modes() {
			raw := chaos.Mutate(base, mode, rand.New(rand.NewSource(9)))
			tool, err := NewTool(name, Hints{})
			if err != nil {
				t.Fatalf("NewTool(%q): %v", name, err)
			}
			d := rr.NewDispatcher(tool)
			d.Policy = PolicyRepair
			sc := trace.NewScanner(bytes.NewReader(raw))
			for sc.Scan() {
				d.Event(sc.Event())
			}
			if h := d.Health(); h.Panics != 0 {
				t.Fatalf("%s/%s: %d panics under PolicyRepair", name, mode, h.Panics)
			}
			checkAccounting(t, name+"/"+mode.String(), d, tool.Stats())
		}
	}
}
