package fasttrack

import (
	"errors"
	"sync"
	"sync/atomic"

	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

// ErrMonitorClosed is returned by Ingest (and reported by Err-aware
// callers) for events offered to a monitor after Close.
var ErrMonitorClosed = errors.New("fasttrack: monitor is closed")

// Monitor is the thread-safe online front end: live goroutines report
// their memory accesses and synchronization operations, and the wrapped
// detector checks them on the fly. It plays the role RoadRunner's
// instrumented bytecode plays in the paper — producing the event stream —
// for programs that annotate their operations explicitly.
//
// Thread identifiers are small dense integers chosen by the caller
// (thread 0 is the initial thread); memory locations and locks are
// arbitrary uint64 names in separate namespaces. All methods are safe
// for concurrent use; events are serialized in arrival order, which is a
// legal linearization of the program's own synchronization because every
// happens-before edge the detector tracks is created by a method call
// that the caller orders with the underlying operation.
//
// By default the serialization is a single lock. WithShards(n) replaces
// it with a lock-striped path on which accesses to different variables
// proceed in parallel; see shard.go for the architecture.
type Monitor struct {
	mu     sync.RWMutex
	disp   *rr.Dispatcher
	reg    *obs.Registry
	onRace func(Report)
	seen   int
	tids   *threadIDs // lazy; see Monitor.MainThread

	// cfg is the configuration the monitor was built with, kept so Reset
	// can rebuild an identical pipeline. Immutable after NewMonitor.
	cfg monitorConfig
	// shardedMode mirrors cfg.shards > 1; immutable after NewMonitor so
	// the lock-free routing check in event() never races with Close
	// (which nils the mutable sharding state under the write lock).
	shardedMode bool

	// Lifecycle (see Close/Reset). closed is guarded by mu (write under
	// Lock, read under RLock or Lock); final holds the terminal snapshot
	// queries serve once the live pipeline is released.
	closed   bool
	final    *monitorFinal
	rejected atomic.Int64 // events rejected after Close

	// Sharded ingestion (WithShards > 1); all nil/zero in serial mode.
	sharded rr.ShardedTool
	stripes []stripeLock
	ensured atomic.Int32 // threads-materialized watermark, see access()
	sm      *shardMetrics
}

// monitorFinal is the snapshot captured by Close, after which the
// detector and its shadow state are released.
type monitorFinal struct {
	races    []Report
	detailed []DetailedReport
	stats    Stats
	health   Health
}

// tool returns the dispatcher's current delivery target. Reads must go
// through it rather than a cached Tool: after a panic-budget downgrade
// the wrapper's recover guards contain a tool whose accessors panic too.
func (m *Monitor) tool() Tool { return m.disp.CurrentTool() }

// MonitorOption configures a Monitor.
type MonitorOption func(*monitorConfig)

type monitorConfig struct {
	toolName    string
	tool        Tool
	granularity Granularity
	hints       Hints
	onRace      func(Report)
	policy      Policy
	shards      int
}

// WithDetector selects the detector by name (default "FastTrack").
func WithDetector(name string) MonitorOption {
	return func(c *monitorConfig) { c.toolName = name }
}

// WithTool installs a caller-constructed tool (e.g. a Compose pipeline),
// overriding WithDetector.
func WithTool(t Tool) MonitorOption {
	return func(c *monitorConfig) { c.tool = t }
}

// WithGranularity selects Fine (default) or Coarse shadow locations.
func WithGranularity(g Granularity) MonitorOption {
	return func(c *monitorConfig) { c.granularity = g }
}

// WithHints supplies capacity hints.
func WithHints(h Hints) MonitorOption {
	return func(c *monitorConfig) { c.hints = h }
}

// WithRaceHandler installs a callback invoked synchronously (under the
// monitor's lock) for each new warning.
//
// Reentrancy hazard: because the callback runs while the monitor's lock
// is held, calling ANY method of the same Monitor from inside the
// callback (Read, Write, Races, Stats, Health, ...) self-deadlocks: the
// goroutine blocks forever on a lock it already holds. Hand the Report
// off (e.g. to a channel or log) and return; query the monitor only
// after the callback has returned.
func WithRaceHandler(f func(Report)) MonitorOption {
	return func(c *monitorConfig) { c.onRace = f }
}

// WithValidation enables online stream validation under the given
// policy. PolicyRepair and PolicyDrop degrade gracefully on malformed
// event sequences (the degradation is visible in Health and Stats);
// PolicyStrict stops analysis at the first violation, reported by
// Health().Err. The default is PolicyOff.
func WithValidation(p Policy) MonitorOption {
	return func(c *monitorConfig) { c.policy = p }
}

// NewMonitor returns a Monitor running FastTrack unless configured
// otherwise. It panics on an unknown detector name, since that is a
// programming error at initialization time.
func NewMonitor(opts ...MonitorOption) *Monitor {
	cfg := monitorConfig{toolName: "FastTrack"}
	for _, o := range opts {
		o(&cfg)
	}
	tool := cfg.tool
	if tool == nil {
		var err error
		tool, err = NewTool(cfg.toolName, cfg.hints)
		if err != nil {
			panic(err)
		}
	}
	d := rr.NewDispatcher(tool)
	d.Granularity = cfg.granularity
	d.Policy = cfg.policy
	reg := obs.NewRegistry()
	d.Obs = reg
	m := &Monitor{disp: d, reg: reg, onRace: cfg.onRace, cfg: cfg, shardedMode: cfg.shards > 1}
	if cfg.shards > 1 {
		m.enableSharding(tool, cfg)
	}
	return m
}

// Close finalizes the monitor: it snapshots the warnings, statistics,
// and health for later queries, releases the detector's shadow state
// (the dominant memory cost of a long-lived monitor), and rejects all
// further events — Ingest returns ErrMonitorClosed; the void typed
// methods (Read, Acquire, ...) become counted no-ops. Close is
// idempotent and safe to call concurrently with producers: in-flight
// events complete first, later ones are rejected. Races, Stats, Health,
// and Metrics keep serving the final snapshot.
func (m *Monitor) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	st := m.tool().Stats()
	m.disp.FillStats(&st)
	m.publishShardMetricsLocked()
	m.final = &monitorFinal{
		races:  append([]Report(nil), m.tool().Races()...),
		stats:  st,
		health: m.disp.Health(),
	}
	if dt, ok := m.tool().(rr.DetailedTool); ok {
		m.final.detailed = append([]DetailedReport(nil), dt.DetailedRaces()...)
	}
	m.closed = true
	// Drop the pipeline so the shadow state is collectable. Every event
	// and query path checks closed under the lock before touching these.
	m.disp = nil
	m.sharded = nil
	m.stripes = nil
	return nil
}

// Closed reports whether Close has been called.
func (m *Monitor) Closed() bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.closed
}

// Rejected returns the number of events offered after Close.
func (m *Monitor) Rejected() int64 { return m.rejected.Load() }

// Reset rebuilds the monitor's pipeline from its original configuration
// with fresh (empty) detector state, whether or not the monitor was
// closed; prior warnings and statistics are discarded. It requires a
// detector constructed by name — a caller-supplied WithTool instance
// cannot be rebuilt — and must not run concurrently with producers
// (unlike Close, which may). The thread-handle id allocator is
// preserved, so MainThread-derived handles stay valid id sources.
func (m *Monitor) Reset() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cfg.tool != nil {
		return errors.New("fasttrack: Reset requires a detector constructed by name (a WithTool instance cannot be rebuilt)")
	}
	tool, err := NewTool(m.cfg.toolName, m.cfg.hints)
	if err != nil {
		return err
	}
	d := rr.NewDispatcher(tool)
	d.Granularity = m.cfg.granularity
	d.Policy = m.cfg.policy
	d.Obs = m.reg
	m.disp = d
	m.seen = 0
	m.closed = false
	m.final = nil
	m.rejected.Store(0)
	if m.shardedMode {
		st := tool.(rr.ShardedTool)
		st.EnableSharding(m.cfg.shards)
		d.SetConcurrent()
		m.sharded = st
		m.stripes = make([]stripeLock, m.cfg.shards)
		m.ensured.Store(0)
		m.resetShardMetricsLocked()
	}
	return nil
}

// event feeds one event under the appropriate lock and fires the race
// callback for any new warnings. It returns ErrMonitorClosed after
// Close.
func (m *Monitor) event(e trace.Event) error {
	if m.shardedMode {
		if e.Kind == trace.Read || e.Kind == trace.Write {
			return m.access(e)
		}
		return m.syncEvent(e)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(1)
		return ErrMonitorClosed
	}
	m.disp.Event(e)
	if m.onRace != nil {
		races := m.tool().Races()
		for ; m.seen < len(races); m.seen++ {
			m.onRace(races[m.seen])
		}
	}
	return nil
}

// Ingest records one pre-encoded trace event, routing it exactly as the
// corresponding typed method (Read, Acquire, ...) would. It is the entry
// point for feeding recorded traces into a live monitor, e.g. from the
// CLI, the scaling benchmarks, or the racedetectd ingestion service. It
// returns ErrMonitorClosed once the monitor has been closed and nil
// otherwise.
func (m *Monitor) Ingest(e trace.Event) error { return m.event(e) }

// IngestBatch records a batch of pre-encoded trace events in order and
// returns how many were ingested. It is semantically identical to
// calling Ingest once per element — same race set, same Stats, same
// Health — but the per-event serialization cost is amortized: the
// serial monitor takes its lock once per batch, and the sharded monitor
// partitions each run of consecutive accesses by stripe so one read
// lock and one stripe-lock acquisition cover a whole same-stripe run
// (sync events inside the batch flush as full-exclusion barriers, in
// order). Race callbacks are drained once per batch/stripe-run rather
// than per event, still in report order.
//
// After Close the returned count n may be short: events[:n] were
// ingested, the rest were rejected (and counted in Rejected), and the
// error is ErrMonitorClosed. A batch can only be cut at a lock
// boundary, so the serial path ingests all of the batch or none of it;
// the sharded path can be cut between an access run and a sync event.
func (m *Monitor) IngestBatch(events []trace.Event) (int, error) {
	if len(events) == 0 {
		return 0, nil
	}
	if m.shardedMode {
		return m.ingestBatchSharded(events)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.rejected.Add(int64(len(events)))
		return 0, ErrMonitorClosed
	}
	m.disp.EventBatch(events)
	if m.onRace != nil {
		races := m.tool().Races()
		for ; m.seen < len(races); m.seen++ {
			m.onRace(races[m.seen])
		}
	}
	return len(events), nil
}

// Read records a read of location addr by thread tid.
func (m *Monitor) Read(tid int32, addr uint64) { m.event(trace.Rd(tid, addr)) }

// Write records a write of location addr by thread tid.
func (m *Monitor) Write(tid int32, addr uint64) { m.event(trace.Wr(tid, addr)) }

// Acquire records that thread tid acquired lock l. Re-entrant acquires
// are filtered automatically.
func (m *Monitor) Acquire(tid int32, l uint64) { m.event(trace.Acq(tid, l)) }

// Release records that thread tid released lock l.
func (m *Monitor) Release(tid int32, l uint64) { m.event(trace.Rel(tid, l)) }

// Fork records that thread tid started thread child. Call it before the
// child's first operation.
func (m *Monitor) Fork(tid, child int32) { m.event(trace.ForkOf(tid, child)) }

// Join records that thread tid joined on thread child. Call it after the
// child's last operation.
func (m *Monitor) Join(tid, child int32) { m.event(trace.JoinOf(tid, child)) }

// VolatileRead records a read of volatile (atomic) location v.
func (m *Monitor) VolatileRead(tid int32, v uint64) { m.event(trace.VRd(tid, v)) }

// VolatileWrite records a write of volatile (atomic) location v.
func (m *Monitor) VolatileWrite(tid int32, v uint64) { m.event(trace.VWr(tid, v)) }

// WaitBegin records that thread tid started waiting on lock l (it must
// hold l); per the paper's Section 4 it behaves as a release of l.
func (m *Monitor) WaitBegin(tid int32, l uint64) {
	m.event(trace.Event{Kind: trace.Wait, Tid: tid, Target: l})
}

// WaitEnd records that thread tid woke up from a wait on lock l; it
// behaves as a re-acquisition of l.
func (m *Monitor) WaitEnd(tid int32, l uint64) {
	m.event(trace.Acq(tid, l))
}

// Notify records a notify on lock l; it induces no happens-before edge.
func (m *Monitor) Notify(tid int32, l uint64) {
	m.event(trace.Event{Kind: trace.Notify, Tid: tid, Target: l})
}

// BarrierRelease records that the given threads were simultaneously
// released from barrier b.
func (m *Monitor) BarrierRelease(b uint64, tids ...int32) {
	m.event(trace.Barrier(b, tids...))
}

// ChanSend records that thread tid sent on channel ch (capacity cap).
// Record it immediately before the send operation, so the k-th send
// event precedes the k-th receive event in the monitor's serialization.
func (m *Monitor) ChanSend(tid int32, ch uint64, capacity int32) {
	m.event(trace.ChSend(tid, ch, capacity))
}

// ChanRecv records that thread tid received from channel ch (capacity
// cap). Record it immediately after the receive completes.
func (m *Monitor) ChanRecv(tid int32, ch uint64, capacity int32) {
	m.event(trace.ChRecv(tid, ch, capacity))
}

// ChanClose records that thread tid closed channel ch (capacity cap).
// Record it immediately before the close operation.
func (m *Monitor) ChanClose(tid int32, ch uint64, capacity int32) {
	m.event(trace.ChClose(tid, ch, capacity))
}

// TxBegin marks the start of an atomic block of thread tid, consumed by
// the downstream atomicity checkers; race detectors ignore it.
func (m *Monitor) TxBegin(tid int32) { m.event(trace.Event{Kind: trace.TxBegin, Tid: tid}) }

// TxEnd marks the end of thread tid's current atomic block.
func (m *Monitor) TxEnd(tid int32) { m.event(trace.Event{Kind: trace.TxEnd, Tid: tid}) }

// SetSamplingRate changes the wrapped detector's sampling rate — the
// fraction of the variable space analyzed at full fidelity (see the
// Sampled interface for the exact contract: races found under sampling
// are always genuine, rate 1 restores exact full-fidelity behavior).
// The change is applied under full exclusion, so it is safe while
// producers are streaming, in serial and sharded mode alike. It returns
// false without effect when the monitor is closed or its current tool
// does not support sampling — including a FastTrack pipeline the
// dispatcher has downgraded after repeated panics, so callers (the
// racedetectd governor) can treat false as "leave this session alone".
func (m *Monitor) SetSamplingRate(p float64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	s, ok := m.tool().(rr.Sampled)
	if !ok {
		return false
	}
	s.SetSamplingRate(p)
	return true
}

// SamplingRate reports the wrapped detector's current sampling rate, or
// 1 (full fidelity) when the tool does not support sampling or the
// monitor is closed.
func (m *Monitor) SamplingRate() float64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.closed {
		return 1
	}
	if s, ok := m.tool().(rr.Sampled); ok {
		return s.SamplingRate()
	}
	return 1
}

// Races returns a snapshot of the warnings reported so far. In sharded
// mode the warnings are ordered by event index; per variable, at most
// one warning is ever reported, exactly as in serial mode.
func (m *Monitor) Races() []Report {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return append([]Report(nil), m.final.races...)
	}
	return append([]Report(nil), m.tool().Races()...)
}

// DetailedRaces returns the provenance-enriched view of Races(): one
// DetailedReport per warning, in the same order, with the embedded
// Report identical to the plain snapshot. Reports carry the recorder's
// evidence (clock snapshots, the failed happens-before check, recent
// sync chains, a rendered explanation) only when the wrapped detector
// had provenance enabled (Hints.Provenance); otherwise — including
// tools without a recorder — each entry holds just the plain fields.
func (m *Monitor) DetailedRaces() []DetailedReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return append([]DetailedReport(nil), m.final.detailed...)
	}
	if dt, ok := m.tool().(rr.DetailedTool); ok {
		return append([]DetailedReport(nil), dt.DetailedRaces()...)
	}
	races := m.tool().Races()
	out := make([]DetailedReport, len(races))
	for i, r := range races {
		out[i] = DetailedReport{Report: r}
	}
	return out
}

// Stats returns a snapshot of the detector's counters, including the
// pipeline's resilience counters (panics recovered, locations
// quarantined, validation repairs/drops).
func (m *Monitor) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.final.stats
	}
	st := m.tool().Stats()
	m.disp.FillStats(&st)
	return st
}

// TryStats returns the Stats and Health snapshots as one non-blocking
// acquisition: ok is false, with zero-value snapshots, when the monitor
// lock is contended at the instant of the call. It exists for
// out-of-band observers (the daemon's HTTP stats endpoint) that must
// stay responsive even when an ingesting goroutine has wedged inside
// the detector while holding the lock — a plain Stats() call would
// inherit the wedge.
func (m *Monitor) TryStats() (Stats, Health, bool) {
	if !m.mu.TryLock() {
		return Stats{}, Health{}, false
	}
	defer m.mu.Unlock()
	if m.closed {
		return m.final.stats, m.final.health, true
	}
	st := m.tool().Stats()
	m.disp.FillStats(&st)
	return st, m.disp.Health(), true
}

// TryRaces is the non-blocking Races(): ok is false, with a nil
// snapshot, when the monitor lock is contended at the instant of the
// call. Like TryStats it exists for out-of-band observers that must not
// inherit a wedged ingester's lock.
func (m *Monitor) TryRaces() ([]Report, bool) {
	if !m.mu.TryLock() {
		return nil, false
	}
	defer m.mu.Unlock()
	if m.closed {
		return append([]Report(nil), m.final.races...), true
	}
	return append([]Report(nil), m.tool().Races()...), true
}

// Health returns a degradation snapshot of the monitor's pipeline: a
// crashed (panicking) detector, quarantined shadow locations, and
// stream-validation accounting all surface here instead of aborting the
// caller's process.
func (m *Monitor) Health() Health {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return m.final.health
	}
	return m.disp.Health()
}

// Metrics returns a point-in-time metrics snapshot: the dispatcher's
// live pipeline counters (rr.* namespace, updated atomically on every
// event) plus the detector's own counters and warning count published
// under tool.* at snapshot time. The detector's non-thread-safe state
// is read under the monitor's lock, but the registry snapshot itself is
// taken after the lock is released, so Metrics never holds both the
// monitor lock and the registry lock at once.
func (m *Monitor) Metrics() MetricsSnapshot {
	m.mu.Lock()
	var (
		st    Stats
		races int
	)
	if m.closed {
		st = m.final.stats
		races = len(m.final.races)
	} else {
		st = m.tool().Stats()
		m.disp.FillStats(&st)
		races = len(m.tool().Races())
		m.publishShardMetricsLocked()
	}
	m.mu.Unlock()

	rr.PublishStats(m.reg, "tool", st)
	m.reg.Gauge("tool.races").Set(int64(races))
	return m.reg.Snapshot()
}

// MetricsRegistry exposes the monitor's live registry, e.g. to serve it
// over HTTP with obs-style handlers. The dispatcher's rr.* metrics are
// updated on every event; tool.* gauges are refreshed by Metrics.
func (m *Monitor) MetricsRegistry() *obs.Registry { return m.reg }
