package fasttrack

import (
	"sync"
	"testing"
)

func TestThreadHandleStructuredForkJoin(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	if main.ID() != 0 {
		t.Fatalf("main id = %d", main.ID())
	}
	main.Write(1)
	var seen []int32
	var mu sync.Mutex
	c1 := main.Go(func(child *Thread) {
		child.Read(1) // ordered by the fork
		child.Write(2)
		mu.Lock()
		seen = append(seen, child.ID())
		mu.Unlock()
	})
	c2 := main.Go(func(child *Thread) {
		child.Read(1)
		child.Write(3)
		mu.Lock()
		seen = append(seen, child.ID())
		mu.Unlock()
	})
	main.Join(c1, c2)
	main.Read(2) // ordered by the joins
	main.Read(3)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
	if c1.ID() == c2.ID() || c1.ID() == 0 || c2.ID() == 0 {
		t.Errorf("child ids = %d, %d", c1.ID(), c2.ID())
	}
	if len(seen) != 2 {
		t.Errorf("children ran %d times", len(seen))
	}
}

func TestThreadHandleCatchesRace(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	c := main.Go(func(child *Thread) {
		child.Write(7)
	})
	main.Write(7) // concurrent with the child
	main.Join(c)
	if races := m.Races(); len(races) != 1 {
		t.Errorf("races = %v, want 1", races)
	}
}

func TestThreadHandleLocked(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	var mu sync.Mutex
	c := main.Go(func(child *Thread) {
		mu.Lock()
		child.Locked(9, func() { child.Write(7) })
		mu.Unlock()
	})
	main.Join(c)
	mu.Lock()
	main.Locked(9, func() { main.Read(7) })
	mu.Unlock()
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}

func TestThreadHandleVolatiles(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	main.Write(5)
	main.VolatileWrite(0)
	c := main.Go(func(child *Thread) {
		child.VolatileRead(0)
		child.Read(5)
	})
	main.Join(c)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}

func TestThreadHandleNestedGo(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	c := main.Go(func(child *Thread) {
		g := child.Go(func(grand *Thread) {
			grand.Write(11)
		})
		child.Join(g)
		child.Read(11)
	})
	main.Join(c)
	main.Read(11)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}

// TestJoinRecordsJoinEvents: Join must record a join event for every
// child it waited on. A regression here is silent and dangerous in the
// false-negative direction too: with no join edges, the children's
// writes would race with the parent's later accesses (false positives),
// and the paper's fork/join ordering would be unenforced.
func TestJoinRecordsJoinEvents(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	c1 := main.Go(func(child *Thread) { child.Write(10) })
	c2 := main.Go(func(child *Thread) { child.Write(20) })
	main.Join(c1, c2)
	main.Read(10)
	main.Read(20)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms after Join: %v", races)
	}
	if st := m.Stats(); st.Joins != 2 {
		t.Errorf("Join recorded %d join events, want 2", st.Joins)
	}
}

// TestJoinOne: joining a single child orders only that child's work;
// a later Join picks up the rest without re-recording the first join.
func TestJoinOne(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	release := make(chan struct{})
	c1 := main.Go(func(child *Thread) { child.Write(10) })
	c2 := main.Go(func(child *Thread) {
		<-release
		child.Write(20)
	})
	main.JoinOne(c1)
	main.Read(10) // ordered by c1's join, c2 still running
	close(release)
	main.Join(c2)
	main.Read(20)
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
	if st := m.Stats(); st.Joins != 2 {
		t.Errorf("recorded %d join events, want exactly 2 (no re-record after JoinOne)", st.Joins)
	}
}

func TestJoinOneForeignChildPanics(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	var inner *Thread
	c := main.Go(func(child *Thread) {
		inner = child.Go(func(*Thread) {})
		child.Join(inner)
	})
	main.Join(c)
	defer func() {
		if recover() == nil {
			t.Error("JoinOne on a foreign child must panic")
		}
	}()
	main.JoinOne(inner)
}

func TestJoinForeignChildPanics(t *testing.T) {
	m := NewMonitor()
	main := m.MainThread()
	c := main.Go(func(child *Thread) {})
	var inner *Thread
	c2 := main.Go(func(child *Thread) {
		inner = child.Go(func(g *Thread) {})
		child.Join(inner)
	})
	main.Join(c, c2)
	defer func() {
		if recover() == nil {
			t.Error("joining a foreign child must panic")
		}
	}()
	main.Join(inner)
}

func TestGoWithoutMainThreadPanics(t *testing.T) {
	m := NewMonitor()
	th := &Thread{m: m, id: 0}
	defer func() {
		if recover() == nil {
			t.Error("Go without MainThread must panic")
		}
	}()
	th.Go(func(*Thread) {})
}
