// Quickstart: watch a real Go program with the FastTrack monitor.
//
// Two goroutines increment a shared counter — once without
// synchronization (a textbook data race) and once under a mutex. The
// monitor reports the first version and stays silent on the second,
// demonstrating FastTrack's precision: no false alarms, no missed
// first races.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"fasttrack"
)

// Location names for the monitor. Any uint64 naming scheme works; real
// integrations typically use object addresses.
const (
	locCounter = iota
	lockMu
)

func main() {
	fmt.Println("--- buggy version: unsynchronized counter ---")
	runCounter(false)
	fmt.Println("\n--- fixed version: mutex-protected counter ---")
	runCounter(true)
}

func runCounter(useLock bool) {
	m := fasttrack.NewMonitor(fasttrack.WithRaceHandler(func(r fasttrack.Report) {
		fmt.Printf("RACE DETECTED: %s\n", r)
	}))

	var mu sync.Mutex
	counter := 0

	var wg sync.WaitGroup
	worker := func(tid int32) {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if useLock {
				mu.Lock()
				m.Acquire(tid, lockMu)
			}
			m.Read(tid, locCounter)
			v := counter
			m.Write(tid, locCounter)
			counter = v + 1
			if useLock {
				m.Release(tid, lockMu)
				mu.Unlock()
			}
		}
	}

	wg.Add(2)
	m.Fork(0, 1) // announce the children before they run
	m.Fork(0, 2)
	go worker(1)
	go worker(2)
	wg.Wait()
	m.Join(0, 1)
	m.Join(0, 2)

	races := m.Races()
	if len(races) == 0 {
		fmt.Println("no races detected")
	}
	st := m.Stats()
	fmt.Printf("(monitored %d events: %d reads, %d writes, %d sync ops)\n",
		st.Events, st.Reads, st.Writes, st.Syncs)
}
