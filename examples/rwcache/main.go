// RWCache: a read-write-lock protected cache with a WaitGroup, checked
// online through the syncmodel high-level primitives.
//
// The paper's Section 4 notes that the remaining java.util.concurrent
// primitives "can all be modeled in our representation"; package
// syncmodel is that modeling. This example runs three scenarios over a
// cache shared by one writer and several readers:
//
//  1. correct: lookups hold the read lock, refreshes the write lock,
//     shutdown is ordered by a latch — silent;
//  2. a reader that updates a hit counter under only its read lock —
//     read critical sections are unordered, so FastTrack reports it;
//  3. a shutdown path that reads the cache after Wait() without any
//     countdown from one worker — reported.
//
// Run with: go run ./examples/rwcache
package main

import (
	"fmt"

	"fasttrack"
	"fasttrack/syncmodel"
)

const (
	readers  = 3
	entries  = 4
	hitsVar  = 100 // the shared hit counter (scenario 2's bug)
	statsVar = 200 // shutdown statistics (scenario 3's bug)
)

func main() {
	fmt.Println("--- scenario 1: correct rwlock + latch discipline ---")
	report(run(false, false))
	fmt.Println("\n--- scenario 2: hit counter updated under a read lock ---")
	report(run(true, false))
	fmt.Println("\n--- scenario 3: shutdown without all countdowns ---")
	report(run(false, true))
}

func run(buggyHitCounter, buggyShutdown bool) *fasttrack.Monitor {
	m := fasttrack.NewMonitor(fasttrack.WithHints(fasttrack.Hints{Threads: readers + 2}))
	rw := syncmodel.NewRWMutex(m, 1)
	done := syncmodel.NewLatch(m, 1)

	// Thread ids: 0 = main, 1 = writer, 2.. = readers.
	writer := int32(1)
	m.Fork(0, writer)
	for r := 0; r < readers; r++ {
		m.Fork(0, int32(2+r))
	}

	// The writer populates the cache under the write lock.
	rw.Lock(writer)
	for e := uint64(0); e < entries; e++ {
		m.Write(writer, e)
	}
	m.Write(writer, hitsVar) // reset the hit counter
	rw.Unlock(writer)
	done.CountDown(writer)

	// Readers perform lookups under the read lock.
	for r := 0; r < readers; r++ {
		tid := int32(2 + r)
		rw.RLock(tid)
		for e := uint64(0); e < entries; e++ {
			m.Read(tid, e)
		}
		if buggyHitCounter {
			m.Read(tid, hitsVar)
			m.Write(tid, hitsVar) // bug: mutation under a read lock
		}
		rw.RUnlock(tid)
		m.Write(tid, statsVar+uint64(r)) // private slot, race-free
		if !buggyShutdown || r != 0 {
			done.CountDown(tid)
		}
	}

	// Main awaits the latch, then aggregates.
	done.Await(0)
	for r := 0; r < readers; r++ {
		m.Read(0, statsVar+uint64(r)) // races for r=0 in scenario 3
	}
	rw.Lock(0)
	for e := uint64(0); e < entries; e++ {
		m.Read(0, e)
	}
	m.Read(0, hitsVar)
	rw.Unlock(0)
	return m
}

func report(m *fasttrack.Monitor) {
	races := m.Races()
	if len(races) == 0 {
		fmt.Println("no races detected")
		return
	}
	for _, r := range races {
		fmt.Printf("RACE: %s\n", r)
	}
}
