// Compare: a miniature Table 1 on one workload.
//
// This example generates one of the paper-shaped benchmark traces (tsp
// by default), runs all six race detectors plus the EMPTY baseline over
// the identical event stream, and prints slowdowns, warning counts, and
// the vector-clock statistics that explain them — a one-workload
// rendition of the paper's Tables 1 and 2.
//
// Run with: go run ./examples/compare [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"fasttrack"
	"fasttrack/trace"

	"fasttrack/internal/sim"
)

func main() {
	name := "tsp"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	b, ok := sim.ByName(name)
	if !ok {
		log.Fatalf("unknown workload %q (try: go run ./cmd/tracegen -list)", name)
	}
	tr := b.Trace(0.5)
	fmt.Printf("workload %s: %d threads, %d events, %d seeded race(s)\n\n",
		b.Name, b.Threads, len(tr), b.KnownRaces())

	base := timeIteration(tr)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Tool\tTime\tSlowdown\tWarnings\tVCs alloc\tVC ops\tShadow KB")
	for _, name := range []string{"Empty", "Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"} {
		tool, err := fasttrack.NewTool(name, fasttrack.Hints{Threads: b.Threads})
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		races := fasttrack.Replay(tr, tool, fasttrack.Fine)
		elapsed := time.Since(start)
		st := tool.Stats()
		fmt.Fprintf(tw, "%s\t%v\t%.1fx\t%d\t%d\t%d\t%d\n",
			tool.Name(), elapsed.Round(time.Microsecond),
			float64(elapsed)/float64(base), len(races),
			st.VCAlloc, st.VCOp, st.ShadowBytes/1024)
	}
	tw.Flush()
	fmt.Println("\nThe precise tools (BasicVC, DJIT+, FastTrack) agree on the warnings;")
	fmt.Println("FastTrack gets there with a fraction of the vector-clock work.")
}

// timeIteration measures the no-analysis baseline.
func timeIteration(tr trace.Trace) time.Duration {
	var sink uint64
	start := time.Now()
	for i := range tr {
		sink += uint64(tr[i].Kind) + tr[i].Target
	}
	elapsed := time.Since(start)
	if sink == 42 {
		fmt.Print("")
	}
	if elapsed <= 0 {
		return time.Nanosecond
	}
	return elapsed
}
