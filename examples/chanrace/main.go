// Chanrace: a plain Go program (no fasttrack imports) for the
// instrumentation front-end, with one seeded data race and one
// correctly synchronized counterpart — both built on channels.
//
// The seeded race abuses a buffered channel's slack: with capacity 2,
// both sends complete without waiting for the receiver, so nothing
// orders the receiver goroutine's write before the sender's read. The
// safe half publishes through an unbuffered handoff, whose send/receive
// rendezvous is a real happens-before edge.
//
// Analyze it with the front-end:
//
//	racedetect run ./examples/chanrace
//
// which must report exactly one race (the slack variable), and
// cross-check with the Go runtime's own detector:
//
//	go build -race -o chanrace ./examples/chanrace
//	./chanrace   # reports the same race; exits 66
//
// (`go run -race` works too, but wraps the 66 into its own exit 1.)
package main

import "fmt"

var (
	slack   int // racy: published through a buffered channel's slack
	handoff int // safe: published through an unbuffered handoff
)

func main() {
	racyBufferedSlack()
	safeChannelHandoff()
}

// racyBufferedSlack writes slack in one goroutine and reads it in
// another with only a buffered channel in between — and the buffer is
// never full, so no send ever waits on a receive and no happens-before
// edge ever points from the writer to the reader.
func racyBufferedSlack() {
	ch := make(chan int, 2)
	done := make(chan struct{})
	go func() {
		slack = 1
		<-ch
		<-ch
		close(done)
	}()
	ch <- 1
	ch <- 2                       // both sends fit the buffer: no rendezvous with the receiver
	fmt.Println("slack =", slack) // RACE: unordered with the write above
	<-done
}

// safeChannelHandoff publishes through an unbuffered channel: the send
// happens before the receive completes, so the read is ordered after
// the write and no race exists.
func safeChannelHandoff() {
	ch := make(chan int)
	go func() {
		handoff = 42
		ch <- 1
	}()
	<-ch
	fmt.Println("handoff =", handoff)
}
