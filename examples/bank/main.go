// Bank: lock-protected accounts checked by replaying recorded traces.
//
// This example exercises the offline half of the API: it builds two
// event traces for a small banking workload — one where every transfer
// holds both account locks, and a buggy variant whose audit thread scans
// balances without locking — validates their feasibility, and replays
// them through several detectors.
//
// It shows the paper's central contrast: the precise FastTrack analysis
// accepts the correct program and pinpoints the buggy read, while
// Eraser's LockSet heuristic additionally misfires on the race-free
// initialization pattern.
//
// Run with: go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fasttrack"
	"fasttrack/trace"
)

const (
	numAccounts = 8
	numTellers  = 3 // threads 1..3; thread 4 is the auditor
	transfers   = 40
)

// account i is variable i and is protected by lock i.
func buildTrace(buggyAudit bool) trace.Trace {
	r := rand.New(rand.NewSource(99))
	var tr trace.Trace

	// The bank opens: the main thread funds every account, then starts
	// the tellers and the auditor. Fork ordering makes this race-free.
	for a := uint64(0); a < numAccounts; a++ {
		tr = append(tr, trace.Wr(0, a))
	}
	for u := int32(1); u <= numTellers+1; u++ {
		tr = append(tr, trace.ForkOf(0, u))
	}

	// Tellers transfer between random account pairs, always locking the
	// lower-numbered account first (deadlock-free two-lock protocol).
	for i := 0; i < transfers; i++ {
		teller := int32(1 + i%numTellers)
		from := uint64(r.Intn(numAccounts))
		to := uint64(r.Intn(numAccounts))
		if from == to {
			to = (to + 1) % numAccounts
		}
		lo, hi := from, to
		if lo > hi {
			lo, hi = hi, lo
		}
		tr = append(tr,
			trace.Acq(teller, lo),
			trace.Acq(teller, hi),
			trace.Rd(teller, from),
			trace.Wr(teller, from),
			trace.Rd(teller, to),
			trace.Wr(teller, to),
			trace.Rel(teller, hi),
			trace.Rel(teller, lo),
		)
	}

	// The auditor sums all balances.
	auditor := int32(numTellers + 1)
	for a := uint64(0); a < numAccounts; a++ {
		if buggyAudit {
			tr = append(tr, trace.Rd(auditor, a)) // no lock: races with tellers
		} else {
			tr = append(tr,
				trace.Acq(auditor, a),
				trace.Rd(auditor, a),
				trace.Rel(auditor, a),
			)
		}
	}

	for u := int32(1); u <= numTellers+1; u++ {
		tr = append(tr, trace.JoinOf(0, u))
	}
	// Closing report, after all joins: race-free even without locks.
	for a := uint64(0); a < numAccounts; a++ {
		tr = append(tr, trace.Rd(0, a))
	}
	return tr
}

func main() {
	for _, buggy := range []bool{false, true} {
		label := "correct audit (locks held)"
		if buggy {
			label = "buggy audit (lock-free balance scan)"
		}
		fmt.Printf("=== %s ===\n", label)
		tr := buildTrace(buggy)
		if err := tr.Validate(); err != nil {
			log.Fatalf("trace infeasible: %v", err)
		}
		for _, name := range []string{"FastTrack", "DJIT+", "Eraser"} {
			tool, err := fasttrack.NewTool(name, fasttrack.Hints{Threads: numTellers + 2})
			if err != nil {
				log.Fatal(err)
			}
			races := fasttrack.Replay(tr, tool, fasttrack.Fine)
			fmt.Printf("%-10s %d warning(s)\n", name+":", len(races))
			for _, rep := range races {
				fmt.Printf("           account %d: %s by thread %d\n", rep.Var, rep.Kind, rep.Tid)
			}
		}
		fmt.Println()
	}
	fmt.Println("Note how the precise detectors flag only the buggy audit's accounts,")
	fmt.Println("while Eraser also warns on the correct program: the funding writes and")
	fmt.Println("the closing report happen before the tellers exist and after they have")
	fmt.Println("been joined, so no lock is needed — fork/join ordering Eraser ignores.")
}
