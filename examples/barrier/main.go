// Barrier: a phased stencil computation checked online.
//
// Four workers repeatedly update their own strip of a grid and read
// their neighbours' strips from the previous phase, separated by
// barriers — the sor/lufact pattern from the paper's benchmarks. With
// the barrier annotated (Section 4's FT BARRIER RELEASE rule) the
// program is race-free; dropping one barrier produces real races that
// FastTrack pinpoints.
//
// Run with: go run ./examples/barrier
package main

import (
	"fmt"

	"fasttrack"
)

const (
	workers  = 4
	strip    = 6 // grid cells per worker
	phases   = 5
	barrier0 = 0
)

// The grid is double-buffered: each phase reads buffer (phase%2) and
// writes buffer (phase+1)%2, the standard stencil structure.
func cell(buf, w, i int) uint64 { return uint64(buf*workers*strip + w*strip + i) }

// simulate drives the monitor through the phased computation. The
// workers' operations within one phase are interleaved round-robin; the
// annotateBarriers argument controls whether the barrier between phases
// is reported to the detector (and honored by the schedule).
func simulate(annotateBarriers bool) *fasttrack.Monitor {
	m := fasttrack.NewMonitor(fasttrack.WithHints(fasttrack.Hints{
		Threads: workers + 1,
		Vars:    2 * workers * strip,
	}))
	tids := make([]int32, workers)
	for w := 0; w < workers; w++ {
		tids[w] = int32(w + 1)
		m.Fork(0, tids[w])
	}
	for phase := 0; phase < phases; phase++ {
		src, dst := phase%2, (phase+1)%2
		for step := 0; step < strip; step++ {
			for w := 0; w < workers; w++ {
				tid := tids[w]
				// Read the neighbour's boundary cell from the previous
				// phase's buffer, then update an own cell in the next
				// buffer.
				left := (w + workers - 1) % workers
				m.Read(tid, cell(src, left, strip-1))
				m.Write(tid, cell(dst, w, step))
			}
		}
		if annotateBarriers {
			m.BarrierRelease(barrier0, tids...)
		}
	}
	for _, tid := range tids {
		m.Join(0, tid)
	}
	return m
}

func main() {
	fmt.Println("--- with barriers: phased grid updates are ordered ---")
	m := simulate(true)
	report(m)

	fmt.Println("\n--- without barriers: neighbour reads race with updates ---")
	m = simulate(false)
	report(m)
}

func report(m *fasttrack.Monitor) {
	races := m.Races()
	if len(races) == 0 {
		fmt.Println("no races detected")
	}
	for _, r := range races {
		fmt.Printf("RACE: grid cell %d: %s (threads %d vs %d)\n", r.Var, r.Kind, r.PrevTid, r.Tid)
	}
	st := m.Stats()
	fmt.Printf("(events=%d, vector clocks allocated=%d, O(n) VC ops=%d)\n",
		st.Events, st.VCAlloc, st.VCOp)
}
