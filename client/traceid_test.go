package client

import "testing"

// The sequence field must wrap within the session's own base space: the
// old addition-based form (base = rand<<20; id = base + seq) walked
// into the numerically adjacent session's ID range after only 2^20
// frames, cross-attributing /debug/trace spans between sessions.
func TestTraceIDWrapsWithinBase(t *testing.T) {
	const base = 0x4242_4200_0000_0000 &^ traceSeqMask
	s := &Session{traceBase: base}
	// Park the sequence two steps before the field's top.
	s.traceSeq.Store(traceSeqMask - 2)

	var ids []uint64
	for i := 0; i < 5; i++ {
		ids = append(ids, s.nextTraceID())
	}
	for i, id := range ids {
		if id == 0 {
			t.Fatalf("id[%d] = 0 (zero means untraced on the wire)", i)
		}
		if id&^traceSeqMask != base {
			t.Errorf("id[%d] = %#x escaped base space %#x (neighbor session's range starts at %#x)",
				i, id, base, base+traceSeqMask+1)
		}
	}
	// The boundary really was crossed inside the window: the top value
	// then the wrap back to the bottom of the same space.
	if ids[1] != base|traceSeqMask {
		t.Errorf("id[1] = %#x, want top of field %#x", ids[1], base|traceSeqMask)
	}
	if ids[2] != base {
		t.Errorf("id[2] = %#x, want wrap to %#x", ids[2], base)
	}
	if ids[3] != base|1 {
		t.Errorf("id[3] = %#x, want %#x", ids[3], base|1)
	}
}

// A session that drew the all-zero base must still never emit trace ID
// 0, which the wire format reserves for "untraced frame".
func TestTraceIDNeverZero(t *testing.T) {
	s := &Session{traceBase: 0}
	s.traceSeq.Store(traceSeqMask) // next Add wraps the masked field to 0
	if id := s.nextTraceID(); id != 1 {
		t.Errorf("zero-base wrap id = %#x, want 1", id)
	}
}

// Dial seeds the base with the low sequence bits clear, so the first
// frames of a fresh session cannot collide with the late frames of a
// long-lived one that shares the random high bits.
func TestTraceBaseAligned(t *testing.T) {
	for i := 0; i < 64; i++ {
		base := randTraceBase()
		if base&traceSeqMask != 0 {
			t.Fatalf("base %#x has sequence bits set", base)
		}
	}
}
