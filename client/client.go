package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack/internal/obs"
	"fasttrack/trace"
)

// OverflowPolicy selects what Write does when the client's bounded
// frame queue is full.
type OverflowPolicy int

const (
	// Block makes Write wait for queue space: end-to-end backpressure,
	// no event ever silently lost.
	Block OverflowPolicy = iota
	// Shed makes Write drop the newest batch — the one just sealed —
	// when the queue is full, instead of waiting: bounded producer
	// latency at the cost of analysis completeness. Batches already
	// queued survive; it is the most recent part of the trace that is
	// lost. Shed frames are counted in Stats().FramesShed.
	Shed
)

// ErrSessionClosed is returned by operations on a session after Close.
var ErrSessionClosed = errors.New("client: session is closed")

// ErrResumed is returned by a control operation (Flush, Results, Close)
// whose reply was lost to a connection drop that the session then
// recovered from (WithReconnect). It is transient, not sticky: the
// session is healthy again on a fresh connection and the operation can
// simply be retried.
var ErrResumed = errors.New("client: connection was lost and resumed; retry the operation")

// ServerError is a server-diagnosed session failure (a FrameErrorMsg on
// the wire): the daemon refused or tore down the session for cause.
// Code is one of the ErrCode constants.
type ServerError struct {
	Code string
	Msg  string
	// RetryAfter is the server's redial hint on admission refusals
	// (zero when the server gave none). Dial and the resume path fold
	// it into their backoff.
	RetryAfter time.Duration
	// Node is the refusing daemon's fleet identity ("" on unnamed
	// daemons); fleet routing attributes refusals to nodes with it.
	Node string
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("client: server error [%s]: %s", e.Code, e.Msg)
}

// Temporary reports whether redialing may succeed: the daemon was
// saturated or draining, conditions that clear, as opposed to a
// rejected configuration or protocol violation.
func (e *ServerError) Temporary() bool {
	return e.Code == ErrCodeSessionCap || e.Code == ErrCodeDraining
}

// DialFunc opens the transport connection; overridable for tests and
// fault injection.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

type config struct {
	dialTimeout  time.Duration
	writeTimeout time.Duration
	readTimeout  time.Duration
	batchEvents  int
	queueFrames  int
	onFull       OverflowPolicy
	retries      int
	backoff      time.Duration
	schedule     func(attempt int) time.Duration
	reconnects   int
	maxFrame     int
	hello        Handshake
	dial         DialFunc
	optErr       error

	// Fleet routing hooks (see fleet.go / withRoute). route returns the
	// candidate dial addresses ranked best-first for this session's key;
	// nil means single-node (the Dial addr is the only candidate).
	// observe feeds each candidate's dial+handshake outcome back to the
	// fleet health tracker. sessionKey is the routing key DialFleet
	// hashes (set via WithSessionKey).
	route      func() []string
	observe    func(addr string, err error)
	sessionKey string
}

// candidates returns the dial addresses to sweep, best-first: the fleet
// route when configured, else just the session's address.
func (c *config) candidates(addr string) []string {
	if c.route != nil {
		if r := c.route(); len(r) > 0 {
			return r
		}
	}
	return []string{addr}
}

// observeDial reports one candidate's outcome to the fleet tracker
// (nil error = successful handshake); a no-op without routing.
func (c *config) observeDial(addr string, err error) {
	if c.observe != nil {
		c.observe(addr, err)
	}
}

func defaultConfig() config {
	return config{
		dialTimeout:  5 * time.Second,
		writeTimeout: 10 * time.Second,
		readTimeout:  30 * time.Second,
		batchEvents:  1024,
		queueFrames:  32,
		onFull:       Block,
		retries:      3,
		backoff:      50 * time.Millisecond,
		maxFrame:     trace.DefaultMaxFramePayload,
		hello:        Handshake{Version: ProtocolVersion},
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
}

// retryDelay is the wait before retry number attempt (0-based): the
// configured schedule, or the default jittered exponential backoff —
// initial·2^attempt scaled by a uniform factor in [0.5, 1.5), so a
// daemon restart does not get its reconnecting clients back in one
// synchronized stampede.
func (c *config) retryDelay(attempt int) time.Duration {
	if c.schedule != nil {
		return c.schedule(attempt)
	}
	if attempt > 16 {
		attempt = 16
	}
	d := c.backoff * (1 << attempt)
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// Option configures Dial.
type Option func(*config)

// WithDialTimeout bounds each connection attempt.
func WithDialTimeout(d time.Duration) Option { return func(c *config) { c.dialTimeout = d } }

// WithWriteTimeout bounds each frame write (0 = no deadline).
func WithWriteTimeout(d time.Duration) Option { return func(c *config) { c.writeTimeout = d } }

// WithReadTimeout bounds each wait for a server reply (Flush, Results,
// Close).
func WithReadTimeout(d time.Duration) Option { return func(c *config) { c.readTimeout = d } }

// WithBatchSize sets how many events are packed per wire frame. The
// server ingests each frame as one Monitor.IngestBatch call, so the
// batch size is also the server-side amortization unit: larger frames
// mean fewer lock acquisitions per event in the daemon's analysis (at
// the cost of flush latency, since a partial batch is only framed by
// Flush, Results, or Close).
func WithBatchSize(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.batchEvents = n
		}
	}
}

// WithQueue bounds the client-side frame queue and selects the
// overflow policy.
func WithQueue(frames int, p OverflowPolicy) Option {
	return func(c *config) {
		if frames > 0 {
			c.queueFrames = frames
		}
		c.onFull = p
	}
}

// WithRetry sets the bounded dial retry budget: up to retries extra
// attempts, waiting retryDelay(attempt) between them — by default
// exponential backoff starting at initial with ±50% jitter (see
// WithRetrySchedule to replace the schedule entirely).
func WithRetry(retries int, initial time.Duration) Option {
	return func(c *config) {
		if retries >= 0 {
			c.retries = retries
		}
		if initial > 0 {
			c.backoff = initial
		}
	}
}

// WithRetrySchedule replaces the dial/reconnect backoff schedule: f is
// called with the 0-based retry attempt number and returns how long to
// wait before that retry. The number of attempts is still bounded by
// WithRetry's budget. The caller owns jitter when supplying a schedule;
// a deterministic schedule re-creates the synchronized-stampede problem
// the default avoids. A server Retry-After hint still takes precedence
// when it is longer than the scheduled delay.
func WithRetrySchedule(f func(attempt int) time.Duration) Option {
	return func(c *config) { c.schedule = f }
}

// WithReconnect enables transparent reconnect-and-resume: when the
// transport fails mid-session (not on a server-diagnosed error), the
// session redials with the retry schedule, re-handshakes with an
// incremented session epoch and the original session id as lineage, and
// continues streaming — up to maxResumes times over the session's life.
// See Session for the exact semantics and what resume does NOT promise.
func WithReconnect(maxResumes int) Option {
	return func(c *config) {
		if maxResumes > 0 {
			c.reconnects = maxResumes
		}
	}
}

// WithTool selects the server-side detector ("" = FastTrack).
func WithTool(name string) Option { return func(c *config) { c.hello.Tool = name } }

// WithValidation selects the server-side stream-validation policy
// ("off", "strict", "repair", "drop").
func WithValidation(policy string) Option { return func(c *config) { c.hello.Policy = policy } }

// WithShards asks the server for lock-striped ingestion with n stripes.
func WithShards(n int) Option { return func(c *config) { c.hello.Shards = n } }

// WithGranularity selects the server-side shadow granularity ("fine" or
// "coarse").
func WithGranularity(g string) Option { return func(c *config) { c.hello.Gran = g } }

// WithFidelity selects the session's fidelity mode: "full" (default),
// "sampled", "sampled(p)" with p in (0,1], or "adaptive" (the daemon's
// governor adjusts the session with load). A malformed spec fails Dial.
// Anything below full fidelity trades detection probability for
// throughput; the granted rate and the achieved detection probability
// are reported in Results.
func WithFidelity(spec string) Option {
	return func(c *config) {
		mode, rate, err := ParseFidelity(spec)
		if err != nil {
			c.optErr = err
			return
		}
		c.hello.Fidelity = mode
		c.hello.SampleRate = rate
	}
}

// WithTracing asks the server to trace this session's frames through
// the pipeline stages, and records matching client-side spans (queue
// wait and wire write per event frame, readable via TraceSpans). When
// the server grants the request, every event frame is stamped with a
// trace ID — the key that joins the client-side span to the server's
// /debug/trace spans for the same frame. A server that predates
// tracing simply never grants it; the session still works and the
// client-side spans are still recorded, just without server spans to
// join against.
func WithTracing() Option { return func(c *config) { c.hello.Tracing = true } }

// WithProvenance asks the server to run the provenance flight recorder
// on this session's detector: Results then carries Detailed reports
// with the evidence for each race (vector clocks, the failed
// happens-before check, the recent release/acquire chain, and a
// rendered explanation). Costs roughly one clock copy per analyzed
// access on the server; see BENCH_provenance.json.
func WithProvenance() Option { return func(c *config) { c.hello.Provenance = true } }

// WithDetailedReports asks the server to keep per-variable access
// history for this session, so each race report in Results carries the
// prior access's event index (Report.PrevIndex). The racedetect CLI
// sets it for JSON runs, making a remote race list byte-identical to a
// local analysis of the same trace. Costs two ints per variable on the
// server plus one store per slow-path access.
func WithDetailedReports() Option { return func(c *config) { c.hello.Detailed = true } }

// WithDialFunc replaces the transport dialer (tests, fault injection).
func WithDialFunc(f DialFunc) Option { return func(c *config) { c.dial = f } }

// Stats is the client-side accounting of a session.
type Stats struct {
	EventsWritten int64 // events accepted by Write
	EventsSent    int64 // events handed to the wire (flushed batches)
	EventsShed    int64 // events in frames dropped by the Shed policy
	FramesSent    int64
	FramesShed    int64
	Stalls        int64 // Writes that had to wait for queue space
	Resumes       int64 // successful reconnects (WithReconnect)
}

// Session is one open analysis session on a racedetectd server. A
// Session's methods are safe for concurrent use, but events from
// concurrent writers are interleaved at batch granularity; the common
// shape is one producing goroutine per session.
//
// Errors are sticky and fail-closed by default: once the connection or
// the server-side session has failed, every subsequent operation
// returns the first error. WithReconnect relaxes this for transport
// failures only: the session redials, re-handshakes with an incremented
// epoch and its original id as lineage (so the server can refuse a
// stale duplicate of an earlier connection — no event is ever counted
// into two live sessions of one lineage), and resumes streaming into a
// fresh server-side detector. Resume preserves liveness, not exactness:
// the old connection's analysis state died with it, so events
// unacknowledged at the drop may be lost and race reports start over
// from the resumed stream's beginning. Control operations that were
// awaiting a reply across the drop return the transient ErrResumed.
// Server-diagnosed failures (FrameErrorMsg) never trigger resume; the
// daemon tore the session down for cause and the error stays sticky.
type Session struct {
	cfg  config
	addr string

	// Connection state, replaced as a unit on resume. gen counts
	// connection generations; genDead is closed when generation gen's
	// connection is declared lost; replies carries generation gen's
	// control replies. Control frames are stamped with the generation
	// that enqueued them and are dropped rather than sent on a later
	// one (their awaiter got ErrResumed); event frames are
	// generation-free and survive resume.
	connMu      sync.Mutex
	conn        net.Conn // nil once the session has failed
	gen         int64
	genDead     chan struct{}
	replies     chan inFrame
	id          string
	node        string // serving daemon's fleet identity (HelloOK.Node)
	rootID      string // first session id of the lineage
	epoch       int64  // last handshake epoch sent
	resumesLeft int

	bmu     sync.Mutex // guards the batch encoder
	buf     bytes.Buffer
	enc     *trace.Writer
	batched int64

	sendq chan outFrame
	reqMu sync.Mutex // one outstanding control request at a time

	dead     chan struct{} // closed by fail
	failOnce sync.Once
	errv     atomic.Value // error
	closed   atomic.Bool
	seq      atomic.Int64
	final    atomic.Value // Results, set by Close

	eventsWritten atomic.Int64
	eventsSent    atomic.Int64
	eventsShed    atomic.Int64
	framesSent    atomic.Int64
	framesShed    atomic.Int64
	stalls        atomic.Int64
	resumes       atomic.Int64

	// Tracing state (WithTracing). spans is nil when tracing was not
	// requested; traceOK tracks the current connection's server grant
	// (re-evaluated on every handshake, so a resume onto a server that
	// does not speak the extension stops stamping frames).
	spans     *obs.SpanRing
	traceOK   atomic.Bool
	traceSeq  atomic.Uint64
	traceBase uint64
}

// eventsGen marks an outFrame that may be sent on any connection
// generation (event payloads survive resume; control frames do not).
const eventsGen = int64(-1)

type outFrame struct {
	t       trace.FrameType
	payload []byte
	gen     int64
	id      uint64 // trace ID; 0 = untraced (control frames, tracing off)
	start   int64  // span start (batch sealed), unix nanos; 0 = no span
}

type inFrame struct {
	t       trace.FrameType
	payload []byte
}

// Dial connects to a racedetectd server and opens a session, retrying
// transient failures — both connection errors and server admission
// refusals that carry a Retry-After hint — with jittered exponential
// backoff up to the configured budget.
func Dial(addr string, opts ...Option) (*Session, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.optErr != nil {
		return nil, cfg.optErr
	}

	// Each attempt sweeps the candidate list best-first (a single
	// element without fleet routing): failover to the next node is free,
	// only an exhausted sweep costs a backoff wait. A permanent server
	// refusal (bad configuration, protocol violation) fails immediately
	// — every node would refuse it the same way.
	conn, ok, dialed, err := sweepDial(&cfg, addr, cfg.hello, nil)
	if err != nil {
		return nil, err
	}
	addr = dialed

	s := &Session{
		cfg:         cfg,
		addr:        addr,
		conn:        conn,
		genDead:     make(chan struct{}),
		replies:     make(chan inFrame, 4),
		id:          ok.SessionID,
		node:        ok.Node,
		rootID:      ok.SessionID,
		resumesLeft: cfg.reconnects,
		sendq:       make(chan outFrame, cfg.queueFrames),
		dead:        make(chan struct{}),
	}
	if cfg.hello.Tracing {
		// Random high bits keep one session's trace IDs from colliding
		// with another's on the server's shared /debug/trace view; the
		// low traceSeqBits count the session's traced frames and wrap
		// within the session's own ID space (see nextTraceID).
		s.spans = obs.NewSpanRing(clientTraceSpans)
		s.traceBase = randTraceBase()
	}
	s.traceOK.Store(ok.Tracing)
	s.enc = trace.NewWriter(&s.buf, trace.Binary)
	go s.senderLoop()
	go s.readerLoop(conn, 0, s.replies)
	return s, nil
}

// sweepDial opens and handshakes a connection within the retry budget:
// each attempt sweeps the candidate list best-first (one element
// without fleet routing), reporting every candidate's outcome to the
// fleet tracker, and only an exhausted sweep waits out the backoff —
// stretched to the longest Retry-After hint collected during the sweep.
// A permanent server refusal (rejected configuration, protocol
// violation) aborts immediately: every node would refuse it the same
// way. A non-server handshake failure is fatal on a first single-node
// dial (the peer does not speak the protocol) but retryable when
// sweeping a fleet or resuming (one sick node must not kill the
// session). prep, when non-nil, mutates the hello before each handshake
// — the resume path advances the epoch per attempt there, so a reply
// lost after the server registered its epoch cannot stale the next try.
// Returns the connection, the server's hello reply, and the address
// that accepted.
func sweepDial(cfg *config, addr string, hello Handshake, prep func(*Handshake)) (net.Conn, HelloOK, string, error) {
	hsRetry := cfg.route != nil || prep != nil
	for attempt := 0; ; attempt++ {
		var hint time.Duration
		var lastErr error
		for _, cand := range cfg.candidates(addr) {
			conn, err := cfg.dial(cand, cfg.dialTimeout)
			if err != nil {
				cfg.observeDial(cand, err)
				lastErr = err
				continue
			}
			if prep != nil {
				prep(&hello)
			}
			var ok HelloOK
			ok, err = handshakeConn(conn, cfg, hello)
			if err == nil {
				cfg.observeDial(cand, nil)
				return conn, ok, cand, nil
			}
			conn.Close()
			cfg.observeDial(cand, err)
			var se *ServerError
			if errors.As(err, &se) {
				if !se.Temporary() {
					return nil, HelloOK{}, "", err
				}
				hint = maxDuration(hint, se.RetryAfter)
				lastErr = err
				continue
			}
			if !hsRetry {
				return nil, HelloOK{}, "", err
			}
			lastErr = err
		}
		if attempt >= cfg.retries {
			return nil, HelloOK{}, "", fmt.Errorf("client: dial %s: %w (after %d attempts)", addr, lastErr, attempt+1)
		}
		time.Sleep(maxDuration(cfg.retryDelay(attempt), hint))
	}
}

// clientTraceSpans is the capacity of the client-side span ring.
const clientTraceSpans = 64

// traceSeqBits is the width of a trace ID's per-session sequence field:
// the low bits count traced frames, the remaining high bits are the
// session's random base. 2^40 frames outlasts any session (a frame is
// ≥1 event, so that is a trillion events), while 24 random bits per
// concurrent session keep shared-/debug/trace collisions negligible.
const (
	traceSeqBits = 40
	traceSeqMask = uint64(1)<<traceSeqBits - 1
)

// randTraceBase draws a session's trace-ID base: random high bits with
// the sequence field clear, so IDs start at the bottom of the space.
func randTraceBase() uint64 { return rand.Uint64() &^ traceSeqMask }

// nextTraceID returns a fresh nonzero trace ID for an event frame. The
// sequence is masked into the low traceSeqBits, so even a session that
// overflows the field wraps within its own base's ID space instead of
// walking into another session's (the old addition-based form leaked
// into the neighboring base after 2^20 frames).
func (s *Session) nextTraceID() uint64 {
	id := s.traceBase | (s.traceSeq.Add(1) & traceSeqMask)
	if id == 0 {
		id = 1
	}
	return id
}

// TraceSpans returns the client-side spans of recently sent event
// frames, newest first: the "enqueue" stage is the frame's wait in the
// client queue (backpressure shows up here) and "write" is the wire
// write. Nil unless the session was opened WithTracing. Each span's
// trace ID matches the server-side span for the same frame when the
// server granted tracing.
func (s *Session) TraceSpans() []obs.Span {
	if s.spans == nil {
		return nil
	}
	return s.spans.Snapshot()
}

// TracingGranted reports whether the server granted the tracing
// request on the current connection.
func (s *Session) TracingGranted() bool { return s.traceOK.Load() }

func maxDuration(a, b time.Duration) time.Duration {
	if a >= b {
		return a
	}
	return b
}

// handshakeConn runs the hello exchange synchronously on a fresh
// connection, before (or between) the sender/reader loops.
func handshakeConn(conn net.Conn, cfg *config, hello Handshake) (HelloOK, error) {
	fw := trace.NewFrameWriter(conn)
	b, err := json.Marshal(hello)
	if err != nil {
		return HelloOK{}, err
	}
	if cfg.writeTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(cfg.writeTimeout))
	}
	if err := fw.WriteFrame(FrameHello, b); err != nil {
		return HelloOK{}, fmt.Errorf("client: sending hello: %w", err)
	}
	fr := trace.NewFrameReader(conn, cfg.maxFrame)
	if cfg.readTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(cfg.readTimeout))
	}
	t, payload, err := fr.ReadFrame()
	if err != nil {
		return HelloOK{}, fmt.Errorf("client: reading hello reply: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	switch t {
	case FrameHelloOK:
		var ok HelloOK
		if err := json.Unmarshal(payload, &ok); err != nil {
			return HelloOK{}, fmt.Errorf("client: malformed hello reply: %w", err)
		}
		return ok, nil
	case FrameErrorMsg:
		return HelloOK{}, wireErr(payload)
	default:
		return HelloOK{}, fmt.Errorf("client: unexpected hello reply frame %d", t)
	}
}

// ID returns the server-assigned session identifier (of the current
// connection generation; resume opens a new server session whose
// lineage is RootID).
func (s *Session) ID() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.id
}

// RootID returns the first session id of this session's lineage; it is
// stable across resumes and is what resumed handshakes name in
// ResumeOf.
func (s *Session) RootID() string { return s.rootID }

// Node returns the fleet identity of the daemon currently serving the
// session (HelloOK.Node; "" from unnamed daemons). It can change across
// resumes — a fleet-routed session that fails over reports its new
// home.
func (s *Session) Node() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.node
}

// Addr returns the address of the daemon currently serving the session;
// like Node it can change when a fleet-routed session fails over.
func (s *Session) Addr() string {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.addr
}

// Err returns the session's sticky error, nil while healthy.
func (s *Session) Err() error {
	if e, _ := s.errv.Load().(error); e != nil {
		return e
	}
	return nil
}

// fail records the first error and wakes every blocked operation.
// It does not touch the connection (callers own that; see closeConn).
func (s *Session) fail(err error) {
	s.failOnce.Do(func() {
		s.errv.Store(err)
		close(s.dead)
	})
}

// closeConn severs the current connection, unblocking the loops.
func (s *Session) closeConn() {
	s.connMu.Lock()
	if s.conn != nil {
		s.conn.Close()
	}
	s.connMu.Unlock()
}

// snapshot returns the current connection generation as one consistent
// unit.
func (s *Session) snapshot() (net.Conn, int64, chan inFrame, chan struct{}) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.conn, s.gen, s.replies, s.genDead
}

// generation returns the current connection generation number.
func (s *Session) generation() int64 {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return s.gen
}

// lost is the single place a transport failure on generation gen is
// handled: the first reporter (sender or reader loop) either resumes
// the session on a fresh connection or makes the failure sticky.
// Duplicate and stale reports are no-ops.
func (s *Session) lost(gen int64, cause error) {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.gen != gen || s.conn == nil {
		return
	}
	s.conn.Close()
	close(s.genDead) // awaiting control ops observe ErrResumed
	if s.Err() != nil || s.closed.Load() || s.resumesLeft <= 0 {
		s.fail(cause)
		s.conn = nil
		return
	}
	s.resumesLeft--
	s.redialLocked(cause)
}

// redialLocked re-establishes the session under connMu: jittered-backoff
// redial (sweeping the fleet's candidate list when routed, so the
// session fails over to another node if its own died), then a resume
// handshake carrying the lineage's root id and a strictly increasing
// epoch — incremented per handshake attempt, so even if an attempt's
// reply is lost after the server registered it, the next attempt still
// presents a newer epoch. A node that never saw the lineage admits any
// epoch (its high-water mark is zero), which is what makes cross-node
// failover just another resume. While it runs, senderLoop blocks in
// snapshot and producers back up in the frame queue: reconnect is
// backpressure, not loss.
func (s *Session) redialLocked(cause error) {
	hello := s.cfg.hello
	hello.ResumeOf = s.rootID
	conn, ok, dialed, err := sweepDial(&s.cfg, s.addr, hello, func(h *Handshake) {
		s.epoch++
		h.Epoch = s.epoch
	})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && !se.Temporary() {
			s.fail(fmt.Errorf("client: resume refused: %w (connection lost: %v)", err, cause))
		} else {
			s.fail(fmt.Errorf("client: resume failed: %w (connection lost: %v)", err, cause))
		}
		s.conn = nil
		return
	}
	s.addr = dialed
	s.conn = conn
	s.gen++
	s.genDead = make(chan struct{})
	s.replies = make(chan inFrame, 4)
	s.id = ok.SessionID
	s.node = ok.Node
	s.traceOK.Store(ok.Tracing)
	s.resumes.Add(1)
	go s.readerLoop(conn, s.gen, s.replies)
}

// senderLoop is the only writer of the connection(s) after the
// handshake. A frame whose write fails is retried verbatim on the
// replacement connection — safe because the resumed server session's
// detector is fresh, so the events count exactly once there.
func (s *Session) senderLoop() {
	var (
		fw    *trace.FrameWriter
		fwGen = int64(-1)
	)
	for {
		var f outFrame
		select {
		case f = <-s.sendq:
		case <-s.dead:
			return
		}
		for {
			conn, gen, _, _ := s.snapshot()
			if conn == nil {
				return // session failed
			}
			if f.gen != eventsGen && f.gen != gen {
				// Control frame from a pre-resume generation: its
				// awaiter already got ErrResumed; sending it to the
				// fresh session would draw a reply nobody consumes.
				break
			}
			if fwGen != gen {
				fw = trace.NewFrameWriter(conn)
				fwGen = gen
			}
			if s.cfg.writeTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout))
			}
			// A frame stamped under an earlier connection's grant is
			// sent plain if the resumed server did not re-grant tracing
			// (it would reject the flagged type byte).
			id := f.id
			if id != 0 && !s.traceOK.Load() {
				id = 0
			}
			var wstart int64
			if f.start != 0 {
				wstart = time.Now().UnixNano()
			}
			if err := fw.WriteTracedFrame(f.t, id, f.payload); err == nil {
				s.framesSent.Add(1)
				if f.start != 0 && s.spans != nil {
					sp := obs.Span{TraceID: f.id, Label: s.rootID, Seq: s.framesSent.Load(), Start: f.start}
					sp.AddStage("enqueue", wstart-f.start)
					sp.AddStage("write", time.Now().UnixNano()-wstart)
					s.spans.Record(sp)
				}
				break
			} else {
				s.lost(gen, fmt.Errorf("client: writing frame: %w", err))
			}
		}
	}
}

// readerLoop is the only reader of one connection generation; it feeds
// replies to the waiting control operation. Transport errors go through
// lost (which may resume); server error frames are sticky — the daemon
// tore the session down for cause, so resuming would replay the same
// fate.
func (s *Session) readerLoop(conn net.Conn, gen int64, replies chan inFrame) {
	fr := trace.NewFrameReader(conn, s.cfg.maxFrame)
	for {
		t, payload, err := fr.ReadFrame()
		if err != nil {
			s.lost(gen, fmt.Errorf("client: reading reply: %w", err))
			return
		}
		if t == FrameErrorMsg {
			conn.Close()
			s.fail(wireErr(payload))
			return
		}
		select {
		case replies <- inFrame{t, payload}:
		case <-s.dead:
			return
		}
	}
}

// wireErr decodes a server error frame.
func wireErr(payload []byte) error {
	var we WireError
	if err := json.Unmarshal(payload, &we); err != nil {
		return fmt.Errorf("client: malformed server error frame: %w", err)
	}
	return &ServerError{
		Code:       we.Code,
		Msg:        we.Msg,
		RetryAfter: time.Duration(we.RetryAfterMillis) * time.Millisecond,
		Node:       we.Node,
	}
}

// Write appends one event to the current batch, sending the batch as a
// wire frame when it reaches the configured size. Under the Block
// policy a full queue makes Write wait (backpressure); under Shed the
// batch is dropped and counted.
func (s *Session) Write(e trace.Event) error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	if err := s.Err(); err != nil {
		return err
	}
	s.bmu.Lock()
	if err := s.enc.Write(e); err != nil {
		s.bmu.Unlock()
		return err
	}
	s.eventsWritten.Add(1)
	s.batched++
	full := s.batched >= int64(s.cfg.batchEvents)
	s.bmu.Unlock()
	if full {
		return s.flushBatch()
	}
	return nil
}

// flushBatch seals the current batch into an events frame and enqueues
// it per the overflow policy.
func (s *Session) flushBatch() error {
	s.bmu.Lock()
	if s.batched == 0 {
		s.bmu.Unlock()
		return nil
	}
	if err := s.enc.Flush(); err != nil {
		s.bmu.Unlock()
		return err
	}
	payload := append([]byte(nil), s.buf.Bytes()...)
	n := s.batched
	s.buf.Reset()
	s.enc = trace.NewWriter(&s.buf, trace.Binary)
	s.batched = 0
	s.bmu.Unlock()

	f := outFrame{t: FrameEvents, payload: payload, gen: eventsGen}
	if s.spans != nil {
		f.start = time.Now().UnixNano()
		if s.traceOK.Load() {
			f.id = s.nextTraceID()
		}
	}
	if s.cfg.onFull == Shed {
		select {
		case s.sendq <- f:
			s.eventsSent.Add(n)
		default:
			s.framesShed.Add(1)
			s.eventsShed.Add(n)
		}
		return nil
	}
	select {
	case s.sendq <- f:
	default:
		s.stalls.Add(1)
		select {
		case s.sendq <- f:
		case <-s.dead:
			return s.Err()
		}
	}
	s.eventsSent.Add(n)
	return nil
}

// enqueueControl enqueues a control frame stamped with the generation
// it belongs to; control frames always block for space (they are rare
// and must not be shed).
func (s *Session) enqueueControl(t trace.FrameType, v any, gen int64) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	select {
	case s.sendq <- outFrame{t: t, payload: b, gen: gen}:
		return nil
	case <-s.dead:
		return s.Err()
	}
}

// await waits for the reply of the outstanding control request, issued
// at connection generation gen0. Callers hold reqMu, so at most one
// reply is in flight. If the connection was lost (and possibly resumed)
// since the request was issued, the reply will never arrive; await
// returns ErrResumed instead of waiting for the timeout.
func (s *Session) await(want trace.FrameType, seq, gen0 int64) (inFrame, error) {
	conn, gen, replies, gd := s.snapshot()
	if gen != gen0 || conn == nil {
		if err := s.Err(); err != nil {
			return inFrame{}, err
		}
		return inFrame{}, ErrResumed
	}
	var timeout <-chan time.Time
	if s.cfg.readTimeout > 0 {
		tm := time.NewTimer(s.cfg.readTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	// An already-delivered reply wins over a concurrent connection
	// teardown: the server may legally close right after replying (a
	// CloseOK followed by its end of stream).
	var r inFrame
	select {
	case r = <-replies:
	default:
		select {
		case r = <-replies:
		case <-gd:
			if err := s.Err(); err != nil {
				return inFrame{}, err
			}
			return inFrame{}, ErrResumed
		case <-s.dead:
			return inFrame{}, s.Err()
		case <-timeout:
			err := fmt.Errorf("client: timed out after %v waiting for frame %d", s.cfg.readTimeout, want)
			s.fail(err)
			s.closeConn()
			return inFrame{}, err
		}
	}
	if r.t != want {
		err := fmt.Errorf("client: protocol error: got frame %d, want %d", r.t, want)
		s.fail(err)
		s.closeConn()
		return inFrame{}, err
	}
	var q Seq
	if err := json.Unmarshal(r.payload, &q); err != nil {
		s.fail(fmt.Errorf("client: malformed reply: %w", err))
		s.closeConn()
		return inFrame{}, s.Err()
	}
	if q.Seq != seq {
		err := fmt.Errorf("client: protocol error: reply seq %d, want %d", q.Seq, seq)
		s.fail(err)
		s.closeConn()
		return inFrame{}, err
	}
	return r, nil
}

// Flush sends the current batch and blocks until the server
// acknowledges that every event sent so far has been ingested. Events
// acknowledged by a Flush survive even an immediate server drain. After
// a resume, the acknowledgment covers the resumed session's stream —
// events unacknowledged at the connection drop may have been lost with
// the old session.
func (s *Session) Flush() error {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return ErrSessionClosed
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	gen0 := s.generation()
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameFlush, Seq{Seq: seq}, gen0); err != nil {
		return err
	}
	_, err := s.await(FrameFlushOK, seq, gen0)
	return err
}

// Results sends any buffered events and returns the server's current
// analysis snapshot for this session. After Close it returns the final
// snapshot captured at session end.
func (s *Session) Results() (Results, error) {
	if f, ok := s.final.Load().(Results); ok {
		return f, nil
	}
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return Results{}, ErrSessionClosed
	}
	if err := s.flushBatch(); err != nil {
		return Results{}, err
	}
	gen0 := s.generation()
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameQuery, Seq{Seq: seq}, gen0); err != nil {
		return Results{}, err
	}
	r, err := s.await(FrameResults, seq, gen0)
	if err != nil {
		return Results{}, err
	}
	var res Results
	if err := json.Unmarshal(r.payload, &res); err != nil {
		return Results{}, fmt.Errorf("client: malformed results: %w", err)
	}
	return res, nil
}

// Close flushes buffered events, ends the session on the server
// (capturing its final results, available via Results afterwards), and
// releases the connection. Closing an already-failed session returns
// the sticky error; Close is idempotent.
func (s *Session) Close() error {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	if err := s.Err(); err != nil {
		s.closed.Store(true)
		return err
	}
	if err := s.flushBatch(); err != nil {
		s.closed.Store(true)
		return err
	}
	gen0 := s.generation()
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameClose, Seq{Seq: seq}, gen0); err != nil {
		s.closed.Store(true)
		return err
	}
	r, err := s.await(FrameCloseOK, seq, gen0)
	s.closed.Store(true)
	if err != nil {
		// Tear the session down even when the goodbye was cut short
		// (e.g. ErrResumed), so a resumed connection is not left open.
		s.fail(err)
		s.closeConn()
		return err
	}
	var res Results
	if err := json.Unmarshal(r.payload, &res); err == nil {
		s.final.Store(res)
	}
	s.fail(ErrSessionClosed) // tear down the loops...
	s.closeConn()            // ...and the connection
	return nil
}

// Stats returns the client-side accounting so far.
func (s *Session) Stats() Stats {
	return Stats{
		EventsWritten: s.eventsWritten.Load(),
		EventsSent:    s.eventsSent.Load(),
		EventsShed:    s.eventsShed.Load(),
		FramesSent:    s.framesSent.Load(),
		FramesShed:    s.framesShed.Load(),
		Stalls:        s.stalls.Load(),
		Resumes:       s.resumes.Load(),
	}
}
