package client

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack/trace"
)

// OverflowPolicy selects what Write does when the client's bounded
// frame queue is full.
type OverflowPolicy int

const (
	// Block makes Write wait for queue space: end-to-end backpressure,
	// no event ever silently lost.
	Block OverflowPolicy = iota
	// Shed makes Write drop the newest batch — the one just sealed —
	// when the queue is full, instead of waiting: bounded producer
	// latency at the cost of analysis completeness. Batches already
	// queued survive; it is the most recent part of the trace that is
	// lost. Shed frames are counted in Stats().FramesShed.
	Shed
)

// ErrSessionClosed is returned by operations on a session after Close.
var ErrSessionClosed = errors.New("client: session is closed")

// DialFunc opens the transport connection; overridable for tests and
// fault injection.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

type config struct {
	dialTimeout  time.Duration
	writeTimeout time.Duration
	readTimeout  time.Duration
	batchEvents  int
	queueFrames  int
	onFull       OverflowPolicy
	retries      int
	backoff      time.Duration
	maxFrame     int
	hello        Handshake
	dial         DialFunc
}

func defaultConfig() config {
	return config{
		dialTimeout:  5 * time.Second,
		writeTimeout: 10 * time.Second,
		readTimeout:  30 * time.Second,
		batchEvents:  1024,
		queueFrames:  32,
		onFull:       Block,
		retries:      3,
		backoff:      50 * time.Millisecond,
		maxFrame:     trace.DefaultMaxFramePayload,
		hello:        Handshake{Version: ProtocolVersion},
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
	}
}

// Option configures Dial.
type Option func(*config)

// WithDialTimeout bounds each connection attempt.
func WithDialTimeout(d time.Duration) Option { return func(c *config) { c.dialTimeout = d } }

// WithWriteTimeout bounds each frame write (0 = no deadline).
func WithWriteTimeout(d time.Duration) Option { return func(c *config) { c.writeTimeout = d } }

// WithReadTimeout bounds each wait for a server reply (Flush, Results,
// Close).
func WithReadTimeout(d time.Duration) Option { return func(c *config) { c.readTimeout = d } }

// WithBatchSize sets how many events are packed per wire frame. The
// server ingests each frame as one Monitor.IngestBatch call, so the
// batch size is also the server-side amortization unit: larger frames
// mean fewer lock acquisitions per event in the daemon's analysis (at
// the cost of flush latency, since a partial batch is only framed by
// Flush, Results, or Close).
func WithBatchSize(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.batchEvents = n
		}
	}
}

// WithQueue bounds the client-side frame queue and selects the
// overflow policy.
func WithQueue(frames int, p OverflowPolicy) Option {
	return func(c *config) {
		if frames > 0 {
			c.queueFrames = frames
		}
		c.onFull = p
	}
}

// WithRetry sets the bounded dial retry budget: up to retries extra
// attempts with exponentially growing backoff starting at initial.
func WithRetry(retries int, initial time.Duration) Option {
	return func(c *config) {
		if retries >= 0 {
			c.retries = retries
		}
		if initial > 0 {
			c.backoff = initial
		}
	}
}

// WithTool selects the server-side detector ("" = FastTrack).
func WithTool(name string) Option { return func(c *config) { c.hello.Tool = name } }

// WithValidation selects the server-side stream-validation policy
// ("off", "strict", "repair", "drop").
func WithValidation(policy string) Option { return func(c *config) { c.hello.Policy = policy } }

// WithShards asks the server for lock-striped ingestion with n stripes.
func WithShards(n int) Option { return func(c *config) { c.hello.Shards = n } }

// WithGranularity selects the server-side shadow granularity ("fine" or
// "coarse").
func WithGranularity(g string) Option { return func(c *config) { c.hello.Gran = g } }

// WithDialFunc replaces the transport dialer (tests, fault injection).
func WithDialFunc(f DialFunc) Option { return func(c *config) { c.dial = f } }

// Stats is the client-side accounting of a session.
type Stats struct {
	EventsWritten int64 // events accepted by Write
	EventsSent    int64 // events handed to the wire (flushed batches)
	EventsShed    int64 // events in frames dropped by the Shed policy
	FramesSent    int64
	FramesShed    int64
	Stalls        int64 // Writes that had to wait for queue space
}

// Session is one open analysis session on a racedetectd server. A
// Session's methods are safe for concurrent use, but events from
// concurrent writers are interleaved at batch granularity; the common
// shape is one producing goroutine per session.
//
// Errors are sticky and fail-closed: once the connection or the
// server-side session has failed, every subsequent operation returns
// the first error. There is deliberately no transparent reconnect —
// the server's monitor state died with the session, so resuming the
// stream elsewhere would silently analyze a torn trace.
type Session struct {
	cfg  config
	conn net.Conn
	id   string

	bmu     sync.Mutex // guards the batch encoder
	buf     bytes.Buffer
	enc     *trace.Writer
	batched int64

	sendq   chan outFrame
	replies chan inFrame
	reqMu   sync.Mutex // one outstanding control request at a time

	dead     chan struct{} // closed by fail
	failOnce sync.Once
	errv     atomic.Value // error
	closed   atomic.Bool
	seq      atomic.Int64
	final    atomic.Value // Results, set by Close

	eventsWritten atomic.Int64
	eventsSent    atomic.Int64
	eventsShed    atomic.Int64
	framesSent    atomic.Int64
	framesShed    atomic.Int64
	stalls        atomic.Int64
}

type outFrame struct {
	t       trace.FrameType
	payload []byte
}

type inFrame struct {
	t       trace.FrameType
	payload []byte
}

// Dial connects to a racedetectd server and opens a session, retrying
// transient connection failures with exponential backoff up to the
// configured budget.
func Dial(addr string, opts ...Option) (*Session, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}

	var (
		conn net.Conn
		err  error
	)
	backoff := cfg.backoff
	for attempt := 0; ; attempt++ {
		conn, err = cfg.dial(addr, cfg.dialTimeout)
		if err == nil {
			break
		}
		if attempt >= cfg.retries {
			return nil, fmt.Errorf("client: dial %s: %w (after %d attempts)", addr, err, attempt+1)
		}
		time.Sleep(backoff)
		backoff *= 2
	}

	s := &Session{
		cfg:     cfg,
		conn:    conn,
		sendq:   make(chan outFrame, cfg.queueFrames),
		replies: make(chan inFrame, 4),
		dead:    make(chan struct{}),
	}
	s.enc = trace.NewWriter(&s.buf, trace.Binary)

	if err := s.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	go s.senderLoop()
	go s.readerLoop()
	return s, nil
}

// handshake runs the hello exchange synchronously on the dialing
// goroutine, before the sender/reader loops exist.
func (s *Session) handshake() error {
	fw := trace.NewFrameWriter(s.conn)
	b, err := json.Marshal(s.cfg.hello)
	if err != nil {
		return err
	}
	s.setWriteDeadline()
	if err := fw.WriteFrame(FrameHello, b); err != nil {
		return fmt.Errorf("client: sending hello: %w", err)
	}
	fr := trace.NewFrameReader(s.conn, s.cfg.maxFrame)
	if s.cfg.readTimeout > 0 {
		s.conn.SetReadDeadline(time.Now().Add(s.cfg.readTimeout))
	}
	t, payload, err := fr.ReadFrame()
	if err != nil {
		return fmt.Errorf("client: reading hello reply: %w", err)
	}
	s.conn.SetReadDeadline(time.Time{})
	switch t {
	case FrameHelloOK:
		var ok HelloOK
		if err := json.Unmarshal(payload, &ok); err != nil {
			return fmt.Errorf("client: malformed hello reply: %w", err)
		}
		s.id = ok.SessionID
		return nil
	case FrameErrorMsg:
		return wireErr(payload)
	default:
		return fmt.Errorf("client: unexpected hello reply frame %d", t)
	}
}

// ID returns the server-assigned session identifier.
func (s *Session) ID() string { return s.id }

// Err returns the session's sticky error, nil while healthy.
func (s *Session) Err() error {
	if e, _ := s.errv.Load().(error); e != nil {
		return e
	}
	return nil
}

// fail records the first error, severs the connection, and wakes every
// blocked operation. Subsequent calls are no-ops.
func (s *Session) fail(err error) {
	s.failOnce.Do(func() {
		s.errv.Store(err)
		close(s.dead)
		s.conn.Close()
	})
}

func (s *Session) setWriteDeadline() {
	if s.cfg.writeTimeout > 0 {
		s.conn.SetWriteDeadline(time.Now().Add(s.cfg.writeTimeout))
	}
}

// senderLoop is the only writer of the connection after the handshake.
func (s *Session) senderLoop() {
	fw := trace.NewFrameWriter(s.conn)
	for {
		select {
		case f := <-s.sendq:
			s.setWriteDeadline()
			if err := fw.WriteFrame(f.t, f.payload); err != nil {
				s.fail(fmt.Errorf("client: writing frame: %w", err))
				return
			}
			s.framesSent.Add(1)
		case <-s.dead:
			return
		}
	}
}

// readerLoop is the only reader of the connection after the handshake;
// it feeds replies to the waiting control operation and turns server
// error frames into the sticky session error.
func (s *Session) readerLoop() {
	fr := trace.NewFrameReader(s.conn, s.cfg.maxFrame)
	for {
		t, payload, err := fr.ReadFrame()
		if err != nil {
			s.fail(fmt.Errorf("client: reading reply: %w", err))
			return
		}
		if t == FrameErrorMsg {
			s.fail(wireErr(payload))
			return
		}
		select {
		case s.replies <- inFrame{t, payload}:
		case <-s.dead:
			return
		}
	}
}

// wireErr decodes a server error frame.
func wireErr(payload []byte) error {
	var we WireError
	if err := json.Unmarshal(payload, &we); err != nil {
		return fmt.Errorf("client: malformed server error frame: %w", err)
	}
	return fmt.Errorf("client: server error [%s]: %s", we.Code, we.Msg)
}

// Write appends one event to the current batch, sending the batch as a
// wire frame when it reaches the configured size. Under the Block
// policy a full queue makes Write wait (backpressure); under Shed the
// batch is dropped and counted.
func (s *Session) Write(e trace.Event) error {
	if s.closed.Load() {
		return ErrSessionClosed
	}
	if err := s.Err(); err != nil {
		return err
	}
	s.bmu.Lock()
	if err := s.enc.Write(e); err != nil {
		s.bmu.Unlock()
		return err
	}
	s.eventsWritten.Add(1)
	s.batched++
	full := s.batched >= int64(s.cfg.batchEvents)
	s.bmu.Unlock()
	if full {
		return s.flushBatch()
	}
	return nil
}

// flushBatch seals the current batch into an events frame and enqueues
// it per the overflow policy.
func (s *Session) flushBatch() error {
	s.bmu.Lock()
	if s.batched == 0 {
		s.bmu.Unlock()
		return nil
	}
	if err := s.enc.Flush(); err != nil {
		s.bmu.Unlock()
		return err
	}
	payload := append([]byte(nil), s.buf.Bytes()...)
	n := s.batched
	s.buf.Reset()
	s.enc = trace.NewWriter(&s.buf, trace.Binary)
	s.batched = 0
	s.bmu.Unlock()

	f := outFrame{FrameEvents, payload}
	if s.cfg.onFull == Shed {
		select {
		case s.sendq <- f:
			s.eventsSent.Add(n)
		default:
			s.framesShed.Add(1)
			s.eventsShed.Add(n)
		}
		return nil
	}
	select {
	case s.sendq <- f:
	default:
		s.stalls.Add(1)
		select {
		case s.sendq <- f:
		case <-s.dead:
			return s.Err()
		}
	}
	s.eventsSent.Add(n)
	return nil
}

// enqueueControl enqueues a control frame; control frames always block
// for space (they are rare and must not be shed).
func (s *Session) enqueueControl(t trace.FrameType, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	select {
	case s.sendq <- outFrame{t, b}:
		return nil
	case <-s.dead:
		return s.Err()
	}
}

// await waits for the reply of the outstanding control request.
// Callers hold reqMu, so at most one reply is in flight.
func (s *Session) await(want trace.FrameType, seq int64) (inFrame, error) {
	var timeout <-chan time.Time
	if s.cfg.readTimeout > 0 {
		tm := time.NewTimer(s.cfg.readTimeout)
		defer tm.Stop()
		timeout = tm.C
	}
	// An already-delivered reply wins over a concurrent connection
	// teardown: the server may legally close right after replying (a
	// CloseOK followed by its end of stream).
	var r inFrame
	select {
	case r = <-s.replies:
	default:
		select {
		case r = <-s.replies:
		case <-s.dead:
			return inFrame{}, s.Err()
		case <-timeout:
			err := fmt.Errorf("client: timed out after %v waiting for frame %d", s.cfg.readTimeout, want)
			s.fail(err)
			return inFrame{}, err
		}
	}
	if r.t != want {
		err := fmt.Errorf("client: protocol error: got frame %d, want %d", r.t, want)
		s.fail(err)
		return inFrame{}, err
	}
	var q Seq
	if err := json.Unmarshal(r.payload, &q); err != nil {
		s.fail(fmt.Errorf("client: malformed reply: %w", err))
		return inFrame{}, s.Err()
	}
	if q.Seq != seq {
		err := fmt.Errorf("client: protocol error: reply seq %d, want %d", q.Seq, seq)
		s.fail(err)
		return inFrame{}, err
	}
	return r, nil
}

// Flush sends the current batch and blocks until the server
// acknowledges that every event sent so far has been ingested. Events
// acknowledged by a Flush survive even an immediate server drain.
func (s *Session) Flush() error {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return ErrSessionClosed
	}
	if err := s.flushBatch(); err != nil {
		return err
	}
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameFlush, Seq{Seq: seq}); err != nil {
		return err
	}
	_, err := s.await(FrameFlushOK, seq)
	return err
}

// Results sends any buffered events and returns the server's current
// analysis snapshot for this session. After Close it returns the final
// snapshot captured at session end.
func (s *Session) Results() (Results, error) {
	if f, ok := s.final.Load().(Results); ok {
		return f, nil
	}
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return Results{}, ErrSessionClosed
	}
	if err := s.flushBatch(); err != nil {
		return Results{}, err
	}
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameQuery, Seq{Seq: seq}); err != nil {
		return Results{}, err
	}
	r, err := s.await(FrameResults, seq)
	if err != nil {
		return Results{}, err
	}
	var res Results
	if err := json.Unmarshal(r.payload, &res); err != nil {
		return Results{}, fmt.Errorf("client: malformed results: %w", err)
	}
	return res, nil
}

// Close flushes buffered events, ends the session on the server
// (capturing its final results, available via Results afterwards), and
// releases the connection. Closing an already-failed session returns
// the sticky error; Close is idempotent.
func (s *Session) Close() error {
	s.reqMu.Lock()
	defer s.reqMu.Unlock()
	if s.closed.Load() {
		return nil
	}
	if err := s.Err(); err != nil {
		s.closed.Store(true)
		return err
	}
	if err := s.flushBatch(); err != nil {
		s.closed.Store(true)
		return err
	}
	seq := s.seq.Add(1)
	if err := s.enqueueControl(FrameClose, Seq{Seq: seq}); err != nil {
		s.closed.Store(true)
		return err
	}
	r, err := s.await(FrameCloseOK, seq)
	s.closed.Store(true)
	if err != nil {
		return err
	}
	var res Results
	if err := json.Unmarshal(r.payload, &res); err == nil {
		s.final.Store(res)
	}
	s.fail(ErrSessionClosed) // tear down the loops and the connection
	return nil
}

// Stats returns the client-side accounting so far.
func (s *Session) Stats() Stats {
	return Stats{
		EventsWritten: s.eventsWritten.Load(),
		EventsSent:    s.eventsSent.Load(),
		EventsShed:    s.eventsShed.Load(),
		FramesSent:    s.framesSent.Load(),
		FramesShed:    s.framesShed.Load(),
		Stalls:        s.stalls.Load(),
	}
}
