package client

// Fleet-routed dialing: a Fleet wraps internal/fleet's rendezvous
// tracker and hands sessions the routing hooks (config.route/observe)
// that make Dial and reconnect sweep the ranked candidate list instead
// of a single address. The split of responsibilities:
//
//   - internal/fleet decides WHERE a session key should live and which
//     nodes are currently worth trying, from /readyz probes and the
//     refusal outcomes this package reports back;
//   - this file decides WHEN to consult it — at first dial and at every
//     resume — and translates wire-level outcomes (ServerError codes,
//     Retry-After hints, transport failures) into tracker marks.
//
// Placement is sticky by key, not by connection: a session that fails
// over to a non-owner (its owner was draining) will route back to the
// owner on its next resume once the owner is healthy again, because
// Route re-ranks on every sweep.

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"fasttrack/internal/fleet"
)

// Fleet is a routed client view over a set of racedetectd nodes. It
// owns the health tracker (and its /readyz poller, when probing is
// enabled); every Session opened through Dial shares it, so one
// session's refusal steers the next session away immediately.
type Fleet struct {
	tracker *fleet.Tracker
	nodes   []fleet.Node
}

// FleetOption configures NewFleet.
type FleetOption func(*fleetConfig)

type fleetConfig struct {
	probe time.Duration
}

// WithProbeInterval sets how often the fleet polls each node's /readyz
// (default 1s; <=0 disables polling, leaving only data-path refusal
// signals to steer). Nodes without an HTTP address are never polled
// regardless.
func WithProbeInterval(d time.Duration) FleetOption {
	return func(c *fleetConfig) { c.probe = d }
}

// NewFleet builds a routed client over the given node specs — a
// comma-separated list of "addr" or "addr=httpaddr" entries (see
// fleet.ParseNodes) — and starts health probing. Close releases the
// poller.
func NewFleet(spec string, opts ...FleetOption) (*Fleet, error) {
	nodes, err := fleet.ParseNodes(spec)
	if err != nil {
		return nil, err
	}
	return NewFleetNodes(nodes, opts...), nil
}

// NewFleetNodes is NewFleet for an already-parsed node list.
func NewFleetNodes(nodes []fleet.Node, opts ...FleetOption) *Fleet {
	cfg := fleetConfig{probe: time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	f := &Fleet{tracker: fleet.New(nodes), nodes: nodes}
	if cfg.probe > 0 {
		for _, n := range nodes {
			if n.HTTP != "" {
				f.tracker.Start(cfg.probe)
				break
			}
		}
	}
	return f
}

// Close stops the fleet's health poller. Sessions already open are
// unaffected (they hold their own connections), but their resume sweeps
// will route on the tracker's last observed state.
func (f *Fleet) Close() { f.tracker.Stop() }

// Nodes returns the fleet's current per-node health view.
func (f *Fleet) Nodes() []fleet.Status { return f.tracker.Nodes() }

// Owner returns the node that currently owns the session key.
func (f *Fleet) Owner(key string) (string, bool) { return f.tracker.Owner(key) }

// Tracker exposes the underlying health tracker (the aggregator serves
// its view; most callers only need Dial).
func (f *Fleet) Tracker() *fleet.Tracker { return f.tracker }

// Dial opens a session for the given routing key: the key's rendezvous
// owner is tried first, then the remaining nodes in health-then-weight
// order, reusing Dial's retry budget across the sweep. The session
// remembers the fleet for its lifetime — a mid-session connection loss
// re-sweeps the current ranking (WithReconnect), which is how failover
// away from a dead or draining node happens. An empty key routes the
// session randomly (fresh anonymous sessions spread uniformly).
func (f *Fleet) Dial(key string, opts ...Option) (*Session, error) {
	if key == "" {
		key = fmt.Sprintf("anon-%016x", rand.Uint64())
	}
	opts = append(opts, f.route(key))
	primary, ok := f.tracker.Owner(key)
	if !ok {
		return nil, errors.New("client: fleet has no nodes")
	}
	return Dial(primary, opts...)
}

// route is the Option that installs the fleet's routing hooks into a
// session's config.
func (f *Fleet) route(key string) Option {
	return func(c *config) {
		c.sessionKey = key
		c.route = func() []string { return f.tracker.Route(key) }
		c.observe = func(addr string, err error) {
			var se *ServerError
			switch {
			case err == nil:
				f.tracker.MarkUp(addr)
			case errors.As(err, &se):
				if se.Temporary() {
					// Capped or draining: back off this node for the
					// server's Retry-After hint.
					f.tracker.MarkRefused(addr, se.RetryAfter)
				}
				// A permanent refusal (bad handshake, unknown tool) says
				// nothing about the node's health — no mark.
			default:
				f.tracker.MarkDown(addr)
			}
		}
	}
}

// WithSessionKey sets the fleet routing key DialFleet hashes to pick
// the owning node. Sessions dialed with the same key land on the same
// node (while it is healthy), so a caller can keep related sessions —
// shards of one analyzed program, say — colocated. Ignored by plain
// Dial.
func WithSessionKey(key string) Option {
	return func(c *config) { c.sessionKey = key }
}

// DialFleet opens one session on a fleet of racedetectd nodes, given as
// a comma-separated node-spec list ("addr" or "addr=httpaddr" per
// node). The session key (WithSessionKey, or a random key) picks the
// owning node by rendezvous hashing; unhealthy owners are swept past
// using the regular retry budget, and with WithReconnect a mid-session
// node death fails the session over to the next-ranked node. The
// fleet's health poller lives exactly as long as the session.
//
// Callers opening many sessions should build one Fleet and use its Dial
// instead, so all sessions share one tracker and each other's steering
// signals.
func DialFleet(spec string, opts ...Option) (*Session, error) {
	scratch := defaultConfig()
	for _, o := range opts {
		o(&scratch)
	}
	if scratch.optErr != nil {
		return nil, scratch.optErr
	}
	f, err := NewFleet(spec)
	if err != nil {
		return nil, err
	}
	s, err := f.Dial(scratch.sessionKey, opts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	go func() {
		<-s.dead
		f.Close()
	}()
	return s, nil
}
