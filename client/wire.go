// Package client is the Go client library for racedetectd, the
// streaming network ingestion daemon: it dials a daemon, opens a
// session, streams trace events in batched, CRC-framed chunks of the
// binary trace codec, and queries the session's race reports.
//
// This file defines the wire protocol shared by the client and the
// daemon (internal/svc). A connection carries exactly one session:
//
//	client                                server
//	  FrameHello  {tool, policy, ...}  →
//	              ←  FrameHelloOK {sessionId}     (or FrameError)
//	  FrameEvents {binary trace chunk} →          (repeated)
//	  FrameFlush  {seq}                →
//	              ←  FrameFlushOK {seq, events}   (all prior chunks ingested)
//	  FrameQuery  {seq}                →
//	              ←  FrameResults {seq, races, stats, health}
//	  FrameClose  {seq}                →
//	              ←  FrameCloseOK {final results} (connection ends)
//
// Frames are the trace package's length+CRC framing; every payload
// above except FrameEvents is JSON. FrameEvents payloads are complete
// binary-codec traces (magic included) written by trace.Writer and
// decoded by trace.Scanner, so the event encoding on the wire is
// byte-identical to the on-disk format. The server processes one
// session's frames strictly in order, which is what makes FlushOK a
// durability point: events acknowledged by a flush are ingested even if
// the connection dies or the daemon drains immediately afterwards.
//
// One wire frame is one server-side batch: the daemon decodes a
// FrameEvents payload and hands it to Monitor.IngestBatch in a single
// call, so the client's batch size (WithBatchSize) directly sets the
// server's per-event amortization unit. With a sharded session the
// batch's accesses are checked stripe-by-stripe, so report indices
// reflect that (legal) interleaving; the race set is unaffected.
package client

import (
	"fasttrack"
	"fasttrack/trace"
)

// ProtocolVersion is the wire protocol version; a server rejects
// handshakes with a version it does not speak.
const ProtocolVersion = 1

// Frame types of the racedetectd protocol, layered over the trace
// package's framing.
const (
	FrameHello    trace.FrameType = 1  // c→s: JSON Handshake
	FrameHelloOK  trace.FrameType = 2  // s→c: JSON HelloOK
	FrameEvents   trace.FrameType = 3  // c→s: binary trace chunk
	FrameFlush    trace.FrameType = 4  // c→s: JSON Seq
	FrameFlushOK  trace.FrameType = 5  // s→c: JSON FlushOK
	FrameQuery    trace.FrameType = 6  // c→s: JSON Seq
	FrameResults  trace.FrameType = 7  // s→c: JSON Results
	FrameClose    trace.FrameType = 8  // c→s: JSON Seq
	FrameCloseOK  trace.FrameType = 9  // s→c: JSON Results (final)
	FrameErrorMsg trace.FrameType = 10 // s→c: JSON WireError; the session has failed
)

// Handshake opens a session: it selects the detector and pipeline
// configuration the daemon builds the session's Monitor with.
type Handshake struct {
	Version int    `json:"version"`
	Tool    string `json:"tool,omitempty"`        // detector name ("" = FastTrack)
	Policy  string `json:"policy,omitempty"`      // validation: off|strict|repair|drop ("" = off)
	Shards  int    `json:"shards,omitempty"`      // lock-striped ingestion stripes (<=1 = serial)
	Gran    string `json:"granularity,omitempty"` // fine|coarse ("" = fine)
}

// HelloOK acknowledges a handshake.
type HelloOK struct {
	SessionID string `json:"sessionId"`
}

// Seq carries a client-chosen request sequence number; the matching
// reply echoes it.
type Seq struct {
	Seq int64 `json:"seq"`
}

// FlushOK acknowledges a flush: every event chunk sent before the
// flush has been ingested into the session's detector.
type FlushOK struct {
	Seq    int64 `json:"seq"`
	Events int64 `json:"events"` // events ingested so far
}

// Health is the wire form of fasttrack.Health (whose Err field is an
// error and does not round-trip through JSON).
type Health struct {
	Healthy              bool   `json:"healthy"`
	ToolDisabled         bool   `json:"toolDisabled,omitempty"`
	Panics               int64  `json:"panics,omitempty"`
	QuarantinedLocations int    `json:"quarantinedLocations,omitempty"`
	QuarantinedAccesses  int64  `json:"quarantinedAccesses,omitempty"`
	Violations           int64  `json:"violations,omitempty"`
	Repaired             int64  `json:"repaired,omitempty"`
	Dropped              int64  `json:"dropped,omitempty"`
	Synthesized          int64  `json:"synthesized,omitempty"`
	UnheldReleases       int64  `json:"unheldReleases,omitempty"`
	Err                  string `json:"err,omitempty"`
}

// HealthFrom converts a pipeline health snapshot to its wire form.
func HealthFrom(h fasttrack.Health) Health {
	w := Health{
		Healthy:              h.Healthy,
		ToolDisabled:         h.ToolDisabled,
		Panics:               h.Panics,
		QuarantinedLocations: h.QuarantinedLocations,
		QuarantinedAccesses:  h.QuarantinedAccesses,
		Violations:           h.Violations,
		Repaired:             h.Repaired,
		Dropped:              h.Dropped,
		Synthesized:          h.Synthesized,
		UnheldReleases:       h.UnheldReleases,
	}
	if h.Err != nil {
		w.Err = h.Err.Error()
	}
	return w
}

// Results is a session's analysis snapshot: the race reports, detector
// statistics, and pipeline health at the time of the query (or at
// session end, for the FrameCloseOK reply).
type Results struct {
	Seq       int64              `json:"seq,omitempty"`
	SessionID string             `json:"sessionId"`
	Tool      string             `json:"tool"`
	Events    int64              `json:"events"`
	Races     []fasttrack.Report `json:"races"`
	Stats     fasttrack.Stats    `json:"stats"`
	Health    Health             `json:"health"`
}

// WireError is the payload of a FrameErrorMsg: the server's diagnosis
// of why the session failed. The connection closes after it is sent.
type WireError struct {
	Code string `json:"code"` // stable machine-readable class
	Msg  string `json:"msg"`
}

// Error codes carried by WireError.
const (
	ErrCodeProtocol    = "protocol"      // malformed or out-of-order frame
	ErrCodeBadFrame    = "bad-frame"     // framing/CRC failure on the connection
	ErrCodeDecode      = "decode"        // event chunk failed to decode
	ErrCodeIngest      = "ingest"        // monitor rejected events
	ErrCodeDraining    = "draining"      // daemon is shutting down
	ErrCodeSessionCap  = "session-cap"   // too many concurrent sessions
	ErrCodeUnknownTool = "unknown-tool"  // handshake named an unknown detector
	ErrCodeBadRequest  = "bad-handshake" // handshake configuration invalid
)
