// Package client is the Go client library for racedetectd, the
// streaming network ingestion daemon: it dials a daemon, opens a
// session, streams trace events in batched, CRC-framed chunks of the
// binary trace codec, and queries the session's race reports.
//
// This file defines the wire protocol shared by the client and the
// daemon (internal/svc). A connection carries exactly one session:
//
//	client                                server
//	  FrameHello  {tool, policy, ...}  →
//	              ←  FrameHelloOK {sessionId}     (or FrameError)
//	  FrameEvents {binary trace chunk} →          (repeated)
//	  FrameFlush  {seq}                →
//	              ←  FrameFlushOK {seq, events}   (all prior chunks ingested)
//	  FrameQuery  {seq}                →
//	              ←  FrameResults {seq, races, stats, health}
//	  FrameClose  {seq}                →
//	              ←  FrameCloseOK {final results} (connection ends)
//
// Frames are the trace package's length+CRC framing; every payload
// above except FrameEvents is JSON. FrameEvents payloads are complete
// binary-codec traces (magic included) written by trace.Writer and
// decoded by trace.Scanner, so the event encoding on the wire is
// byte-identical to the on-disk format. The server processes one
// session's frames strictly in order, which is what makes FlushOK a
// durability point: events acknowledged by a flush are ingested even if
// the connection dies or the daemon drains immediately afterwards.
//
// One wire frame is one server-side batch: the daemon decodes a
// FrameEvents payload and hands it to Monitor.IngestBatch in a single
// call, so the client's batch size (WithBatchSize) directly sets the
// server's per-event amortization unit. With a sharded session the
// batch's accesses are checked stripe-by-stripe, so report indices
// reflect that (legal) interleaving; the race set is unaffected.
package client

import (
	"fmt"
	"strconv"
	"strings"

	"fasttrack"
	"fasttrack/trace"
)

// ProtocolVersion is the wire protocol version; a server rejects
// handshakes with a version it does not speak.
const ProtocolVersion = 1

// Frame types of the racedetectd protocol, layered over the trace
// package's framing.
const (
	FrameHello    trace.FrameType = 1  // c→s: JSON Handshake
	FrameHelloOK  trace.FrameType = 2  // s→c: JSON HelloOK
	FrameEvents   trace.FrameType = 3  // c→s: binary trace chunk
	FrameFlush    trace.FrameType = 4  // c→s: JSON Seq
	FrameFlushOK  trace.FrameType = 5  // s→c: JSON FlushOK
	FrameQuery    trace.FrameType = 6  // c→s: JSON Seq
	FrameResults  trace.FrameType = 7  // s→c: JSON Results
	FrameClose    trace.FrameType = 8  // c→s: JSON Seq
	FrameCloseOK  trace.FrameType = 9  // s→c: JSON Results (final)
	FrameErrorMsg trace.FrameType = 10 // s→c: JSON WireError; the session has failed
)

// Handshake opens a session: it selects the detector and pipeline
// configuration the daemon builds the session's Monitor with.
//
// All post-version fields are optional JSON, so a version-1 peer that
// predates them interoperates: an old client simply never degrades
// fidelity, an old server ignores the request and runs full.
type Handshake struct {
	Version int    `json:"version"`
	Tool    string `json:"tool,omitempty"`        // detector name ("" = FastTrack)
	Policy  string `json:"policy,omitempty"`      // validation: off|strict|repair|drop ("" = off)
	Shards  int    `json:"shards,omitempty"`      // lock-striped ingestion stripes (<=1 = serial)
	Gran    string `json:"granularity,omitempty"` // fine|coarse ("" = fine)

	// Fidelity selects the session's fidelity mode: "full" (default),
	// "sampled" (fixed rate SampleRate), or "adaptive" (the daemon's
	// governor moves the session along the full→sampled→coarse→shed
	// ladder with load). See ParseFidelity for the accepted spellings.
	Fidelity string `json:"fidelity,omitempty"`
	// SampleRate is the sampling rate for "sampled" (and the starting/
	// ceiling rate for "adaptive"); 0 means the server default.
	SampleRate float64 `json:"sampleRate,omitempty"`

	// Epoch and ResumeOf implement reconnect-and-resume: a client that
	// lost its connection re-handshakes with ResumeOf naming its original
	// session id and Epoch strictly greater than any it used before. The
	// server refuses non-increasing epochs (ErrCodeStaleEpoch), so a
	// delayed duplicate of an earlier connection can never double-count
	// events into a live lineage. A resumed session gets a fresh detector
	// (id and lineage are for reporting; shadow state is not carried).
	Epoch    int64  `json:"epoch,omitempty"`
	ResumeOf string `json:"resumeOf,omitempty"`

	// Tracing asks the server to time this session's frames through the
	// pipeline stages and to accept the optional per-frame trace-ID
	// header field. The client stamps trace IDs only after the server
	// grants the request (HelloOK.Tracing), so a server that predates
	// the extension never sees a flagged frame.
	Tracing bool `json:"tracing,omitempty"`
	// Provenance asks the session's detector to run the provenance
	// flight recorder, so race reports in Results carry the Detailed
	// evidence (clocks, failed check, sync chain, explanation).
	Provenance bool `json:"provenance,omitempty"`
	// Detailed asks the session's detector to keep per-variable access
	// history, so race reports carry the prior access's event index
	// (Report.PrevIndex). Clients that render machine-readable reports
	// set it so a remote run's race list matches a local run of the same
	// trace byte-for-byte.
	Detailed bool `json:"detailed,omitempty"`
}

// HelloOK acknowledges a handshake.
type HelloOK struct {
	SessionID string `json:"sessionId"`
	// Fidelity and SampleRate echo the session's granted starting state,
	// which can differ from the request: under admission pressure the
	// server may force a "full" session to start sampled (ForcedSampled
	// is then true, and the session's ceiling is sampled until pressure
	// clears).
	Fidelity      string  `json:"fidelity,omitempty"`
	SampleRate    float64 `json:"sampleRate,omitempty"`
	ForcedSampled bool    `json:"forcedSampled,omitempty"`
	// Tracing grants the handshake's tracing request: the server is
	// timing this session's frames and will accept trace-ID-flagged
	// frames. A server that predates tracing leaves it false, and the
	// client then never flags a frame.
	Tracing bool `json:"tracing,omitempty"`
	// Node is the accepting daemon's fleet identity (its configured
	// node id; empty on unnamed single-node daemons). A fleet-routed
	// client records it so callers can see where a session landed.
	Node string `json:"node,omitempty"`
}

// Seq carries a client-chosen request sequence number; the matching
// reply echoes it.
type Seq struct {
	Seq int64 `json:"seq"`
}

// FlushOK acknowledges a flush: every event chunk sent before the
// flush has been ingested into the session's detector.
type FlushOK struct {
	Seq    int64 `json:"seq"`
	Events int64 `json:"events"` // events ingested so far
}

// Health is the wire form of fasttrack.Health (whose Err field is an
// error and does not round-trip through JSON).
type Health struct {
	Healthy              bool   `json:"healthy"`
	ToolDisabled         bool   `json:"toolDisabled,omitempty"`
	Panics               int64  `json:"panics,omitempty"`
	QuarantinedLocations int    `json:"quarantinedLocations,omitempty"`
	QuarantinedAccesses  int64  `json:"quarantinedAccesses,omitempty"`
	Violations           int64  `json:"violations,omitempty"`
	Repaired             int64  `json:"repaired,omitempty"`
	Dropped              int64  `json:"dropped,omitempty"`
	Synthesized          int64  `json:"synthesized,omitempty"`
	UnheldReleases       int64  `json:"unheldReleases,omitempty"`
	Err                  string `json:"err,omitempty"`
}

// HealthFrom converts a pipeline health snapshot to its wire form.
func HealthFrom(h fasttrack.Health) Health {
	w := Health{
		Healthy:              h.Healthy,
		ToolDisabled:         h.ToolDisabled,
		Panics:               h.Panics,
		QuarantinedLocations: h.QuarantinedLocations,
		QuarantinedAccesses:  h.QuarantinedAccesses,
		Violations:           h.Violations,
		Repaired:             h.Repaired,
		Dropped:              h.Dropped,
		Synthesized:          h.Synthesized,
		UnheldReleases:       h.UnheldReleases,
	}
	if h.Err != nil {
		w.Err = h.Err.Error()
	}
	return w
}

// Results is a session's analysis snapshot: the race reports, detector
// statistics, and pipeline health at the time of the query (or at
// session end, for the FrameCloseOK reply).
type Results struct {
	Seq       int64              `json:"seq,omitempty"`
	SessionID string             `json:"sessionId"`
	Tool      string             `json:"tool"`
	Events    int64              `json:"events"`
	Races     []fasttrack.Report `json:"races"`
	Stats     fasttrack.Stats    `json:"stats"`
	Health    Health             `json:"health"`
	// DetectionProbability is the fraction of offered accesses analyzed
	// at full fidelity (1.0 unless the session ran sampled/degraded); a
	// race on a sampled-out variable cannot appear in Races, so this
	// bounds per-variable detection probability. Omitted when 0 (only
	// possible on a session that never saw an access while fully shed).
	DetectionProbability float64 `json:"detectionProbability,omitempty"`
	// Detailed carries provenance-enriched race reports when the session
	// was opened with Handshake.Provenance; it mirrors Races one-to-one.
	// Absent on sessions without the flight recorder.
	Detailed []fasttrack.DetailedReport `json:"detailed,omitempty"`
}

// WireError is the payload of a FrameErrorMsg: the server's diagnosis
// of why the session failed. The connection closes after it is sent.
type WireError struct {
	Code string `json:"code"` // stable machine-readable class
	Msg  string `json:"msg"`
	// RetryAfterMillis, when positive on an admission refusal
	// (session-cap, draining), hints how long the client should wait
	// before redialing — the wire analog of HTTP Retry-After. The client
	// folds it into its jittered reconnect backoff.
	RetryAfterMillis int64 `json:"retryAfterMillis,omitempty"`
	// Node is the refusing daemon's fleet identity, so a routed client
	// can attribute the refusal to the right node even through proxies.
	Node string `json:"node,omitempty"`
}

// Error codes carried by WireError.
const (
	ErrCodeProtocol    = "protocol"      // malformed or out-of-order frame
	ErrCodeBadFrame    = "bad-frame"     // framing/CRC failure on the connection
	ErrCodeDecode      = "decode"        // event chunk failed to decode
	ErrCodeIngest      = "ingest"        // monitor rejected events
	ErrCodeDraining    = "draining"      // daemon is shutting down
	ErrCodeSessionCap  = "session-cap"   // too many concurrent sessions
	ErrCodeUnknownTool = "unknown-tool"  // handshake named an unknown detector
	ErrCodeBadRequest  = "bad-handshake" // handshake configuration invalid
	ErrCodeStaleEpoch  = "stale-epoch"   // resume epoch not newer than the lineage's last
)

// Fidelity modes of the Handshake.Fidelity field.
const (
	FidelityFull     = "full"
	FidelitySampled  = "sampled"
	FidelityAdaptive = "adaptive"
)

// ParseFidelity parses the human spellings of a fidelity mode, as
// accepted by racedetect's -fidelity flag and racedetectd's handshake:
// "" or "full"; "adaptive"; "sampled" (server-default rate); and
// "sampled(p)" with p in (0,1], e.g. "sampled(0.1)". It returns the
// canonical mode name and the explicit rate (0 when none was given).
func ParseFidelity(s string) (mode string, rate float64, err error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "", FidelityFull:
		return FidelityFull, 0, nil
	case FidelityAdaptive:
		return FidelityAdaptive, 0, nil
	case FidelitySampled:
		return FidelitySampled, 0, nil
	}
	low := strings.ToLower(s)
	if strings.HasPrefix(low, "sampled(") && strings.HasSuffix(low, ")") {
		p, perr := strconv.ParseFloat(low[len("sampled("):len(low)-1], 64)
		if perr != nil || p <= 0 || p > 1 {
			return "", 0, fmt.Errorf("client: bad sampling rate in %q (want sampled(p) with 0 < p <= 1)", s)
		}
		return FidelitySampled, p, nil
	}
	return "", 0, fmt.Errorf("client: unknown fidelity %q (want full, sampled, sampled(p), or adaptive)", s)
}
