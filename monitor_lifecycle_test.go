package fasttrack

import (
	"errors"
	"sync"
	"testing"

	"fasttrack/trace"
)

// raceyFeed drives a two-thread unsynchronized conflict through m.
func raceyFeed(m *Monitor) {
	m.Fork(0, 1)
	m.Write(0, 7)
	m.Write(1, 7)
}

func TestMonitorClose(t *testing.T) {
	m := NewMonitor()
	raceyFeed(m)
	wantRaces := m.Races()
	wantStats := m.Stats()
	if len(wantRaces) != 1 {
		t.Fatalf("expected 1 race before close, got %d", len(wantRaces))
	}

	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !m.Closed() {
		t.Error("Closed() = false after Close")
	}
	if err := m.Close(); err != nil {
		t.Errorf("second Close: %v (want idempotent nil)", err)
	}

	// Events after Close are rejected with a clear error...
	if err := m.Ingest(trace.Wr(0, 7)); !errors.Is(err, ErrMonitorClosed) {
		t.Errorf("Ingest after Close: err = %v, want ErrMonitorClosed", err)
	}
	m.Write(1, 99)  // typed methods become counted no-ops
	m.Acquire(0, 5) // sync path too
	if got := m.Rejected(); got != 3 {
		t.Errorf("Rejected = %d, want 3", got)
	}

	// ...while queries keep serving the final snapshot.
	if got := m.Races(); len(got) != len(wantRaces) || got[0] != wantRaces[0] {
		t.Errorf("Races after Close = %v, want %v", got, wantRaces)
	}
	if got := m.Stats(); got.Events != wantStats.Events {
		t.Errorf("Stats.Events after Close = %d, want %d", got.Events, wantStats.Events)
	}
	if h := m.Health(); !h.Healthy {
		t.Errorf("Health after clean Close not healthy: %+v", h)
	}
	if snap := m.Metrics(); snap.Gauge("tool.races") != 1 {
		t.Errorf("Metrics after Close: tool.races = %d, want 1", snap.Gauge("tool.races"))
	}
}

func TestMonitorReset(t *testing.T) {
	m := NewMonitor()
	raceyFeed(m)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if m.Closed() {
		t.Error("Closed() = true after Reset")
	}
	if got := m.Races(); len(got) != 0 {
		t.Errorf("Races after Reset = %v, want none", got)
	}
	// The reset monitor detects afresh.
	raceyFeed(m)
	if got := m.Races(); len(got) != 1 {
		t.Errorf("races after Reset+refeed = %d, want 1", len(got))
	}

	// Reset also works on an open monitor (discarding state).
	if err := m.Reset(); err != nil {
		t.Fatalf("Reset on open monitor: %v", err)
	}
	if got := m.Races(); len(got) != 0 {
		t.Errorf("Races after second Reset = %v, want none", got)
	}
}

func TestMonitorResetRejectsWithTool(t *testing.T) {
	tool, err := NewTool("FastTrack", Hints{})
	if err != nil {
		t.Fatal(err)
	}
	m := NewMonitor(WithTool(tool))
	if err := m.Reset(); err == nil {
		t.Error("Reset on a WithTool monitor succeeded, want error")
	}
}

func TestMonitorCloseSharded(t *testing.T) {
	m := NewMonitor(WithShards(4))
	const feeders, perFeeder = 4, 500
	for f := 0; f < feeders; f++ {
		m.Fork(0, int32(f+1))
	}
	var wg sync.WaitGroup
	for f := 0; f < feeders; f++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				// Per-feeder variables plus one shared unsynchronized one.
				m.Write(tid, uint64(tid)*1000+uint64(i%50))
				m.Write(tid, 424242)
			}
		}(int32(f + 1))
	}
	wg.Wait()
	races := m.Races()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Shards() != 4 {
		t.Errorf("Shards after Close = %d, want 4", m.Shards())
	}
	if got := m.Races(); len(got) != len(races) {
		t.Errorf("Races after Close = %d, want %d", len(got), len(races))
	}
	if err := m.Ingest(trace.Wr(1, 1)); !errors.Is(err, ErrMonitorClosed) {
		t.Errorf("sharded Ingest after Close: err = %v, want ErrMonitorClosed", err)
	}
	if err := m.Ingest(trace.Acq(1, 1)); !errors.Is(err, ErrMonitorClosed) {
		t.Errorf("sharded sync Ingest after Close: err = %v, want ErrMonitorClosed", err)
	}

	if err := m.Reset(); err != nil {
		t.Fatalf("sharded Reset: %v", err)
	}
	m.Fork(0, 1)
	m.Write(0, 5)
	m.Write(1, 5)
	if got := m.Races(); len(got) != 1 {
		t.Errorf("races after sharded Reset = %d, want 1", len(got))
	}
}

// TestMonitorCloseConcurrentFeeders closes the monitor while producers
// are mid-stream; everything must stay race-free (under -race) and each
// producer must observe only nil or ErrMonitorClosed.
func TestMonitorCloseConcurrentFeeders(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var opts []MonitorOption
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		m := NewMonitor(opts...)
		for f := 0; f < 4; f++ {
			m.Fork(0, int32(f+1))
		}
		var wg sync.WaitGroup
		for f := 0; f < 4; f++ {
			wg.Add(1)
			go func(tid int32) {
				defer wg.Done()
				for i := 0; i < 2000; i++ {
					if err := m.Ingest(trace.Wr(tid, uint64(i%100))); err != nil {
						if !errors.Is(err, ErrMonitorClosed) {
							t.Errorf("unexpected ingest error: %v", err)
						}
						return
					}
				}
			}(int32(f + 1))
		}
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		_ = m.Races() // must not panic on the released pipeline
	}
}
