package fasttrack

import (
	"testing"
	"time"
)

// TestRaceHandlerReentrancyDeadlocks pins down the documented hazard of
// WithRaceHandler: the callback runs under the monitor's lock, so
// calling back into the same Monitor self-deadlocks. The test asserts
// the deadlock actually happens (if this starts passing through, the
// locking discipline changed and the WithRaceHandler docs must be
// updated). The deadlocked goroutine is deliberately leaked.
func TestRaceHandlerReentrancyDeadlocks(t *testing.T) {
	var m *Monitor
	m = NewMonitor(WithRaceHandler(func(Report) {
		m.Races() // reentrant call under m.mu: blocks forever
	}))
	done := make(chan struct{})
	go func() {
		m.Write(0, 1)
		m.Write(1, 1) // racy write -> callback fires -> deadlock
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("reentrant race-handler call completed; the documented self-deadlock hazard no longer holds — update WithRaceHandler's docs")
	case <-time.After(200 * time.Millisecond):
		// Expected: the goroutine is deadlocked on m.mu. Leak it.
	}
}

// TestRaceHandlerHandoffPattern shows the documented safe pattern: hand
// the report off and query the monitor only after the callback returns.
func TestRaceHandlerHandoffPattern(t *testing.T) {
	reports := make(chan Report, 4)
	m := NewMonitor(WithRaceHandler(func(r Report) { reports <- r }))
	m.Write(0, 1)
	m.Write(1, 1)
	select {
	case r := <-reports:
		if r.Var != 1 {
			t.Fatalf("report = %+v, want race on x1", r)
		}
	default:
		t.Fatal("race handler never fired")
	}
	if got := len(m.Races()); got != 1 {
		t.Fatalf("Races() = %d reports, want 1", got)
	}
}
