// Command tracegen writes a synthetic workload trace to a file, either
// one of the paper's named benchmark shapes or a random feasible trace.
//
// Usage:
//
//	tracegen -workload tsp [-scale 1] [-format text|binary] [-o out.trace]
//	tracegen -random -events 500 -threads 4 [-seed 42] [-o out.trace]
//	tracegen -list
//
// Besides the paper's named benchmarks, "chan" generates the
// channel-heavy workload (ping-pong, bounded buffer, seeded
// buffered-slack races; DESIGN.md §14) on first-class channel events,
// and "chan-volatile" the same workload on the legacy volatile
// encoding — the pair racebench -table chan compares.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"fasttrack/internal/sim"
	"fasttrack/trace"
)

func main() {
	workload := flag.String("workload", "", "named benchmark workload (see -list)")
	random := flag.Bool("random", false, "generate a random feasible trace instead")
	scale := flag.Float64("scale", 1, "workload scale factor")
	format := flag.String("format", "text", "output format: text or binary")
	out := flag.String("o", "-", "output file (default stdout)")
	seed := flag.Int64("seed", 1, "seed for -random")
	events := flag.Int("events", 200, "approximate event count for -random")
	threads := flag.Int("threads", 4, "thread count for -random")
	list := flag.Bool("list", false, "list workload names and exit")
	flag.Parse()

	if *list {
		for _, b := range append(sim.Benchmarks(), sim.EclipseOps()...) {
			fmt.Printf("%s (%d threads, %d seeded races)\n", b.Name, b.Threads, b.KnownRaces())
		}
		c := sim.ChanMix()
		fmt.Printf("%s (%d threads, %d seeded races; chan-volatile re-encodes it on volatiles)\n",
			c.Name, c.Threads(), c.KnownRaces())
		return
	}

	var tr trace.Trace
	switch {
	case *random:
		cfg := sim.DefaultRandomConfig()
		cfg.Events = *events
		cfg.Threads = *threads
		tr = sim.RandomTrace(rand.New(rand.NewSource(*seed)), cfg)
	case *workload == "chan":
		tr = sim.ChanMix().Generate(*scale, sim.ChanNative)
	case *workload == "chan-volatile":
		tr = sim.ChanMix().Generate(*scale, sim.ChanVolatile)
	case *workload != "":
		b, ok := sim.ByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q (try -list)", *workload))
		}
		tr = b.Trace(*scale)
	default:
		fmt.Fprintln(os.Stderr, "usage: tracegen -workload NAME | -random [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("generated trace infeasible (bug): %w", err))
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	var err error
	switch *format {
	case "text":
		err = trace.WriteText(w, tr)
	case "binary":
		err = trace.WriteBinary(w, tr)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "tracegen: wrote %d events\n", len(tr))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(2)
}
