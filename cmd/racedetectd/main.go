// Command racedetectd is the streaming network ingestion daemon: it
// accepts racedetect client sessions over TCP (see the client package
// for the protocol), runs one monitored detector pipeline per session,
// and serves live session and metrics queries over HTTP.
//
// Usage:
//
//	racedetectd [-addr 127.0.0.1:7766] [-http 127.0.0.1:7767]
//	            [-queue 64] [-max-frame bytes] [-max-sessions 256]
//	            [-idle 5m] [-drain 30s] [-report.dir DIR] [-v]
//	            [-governor 250ms] [-stuck-timeout 30s] [-mem-budget bytes]
//	            [-sample-rate 0.25] [-retry-after 1s]
//	            [-trace] [-trace.slow 50ms] [-trace.spans 256]
//	            [-log-format text|json] [-node NAME]
//
// -node names this daemon in a fleet: the identity is published in
// /readyz and /healthz, stamped on admission refusals and accepted
// handshakes, and attached to every session listed over HTTP, which is
// what lets racedetectfleet's merged views attribute state to nodes.
//
// -trace enables the pipeline tracer: sessions that request tracing in
// their handshake get per-frame stage spans (wire gap, queue wait,
// decode, detect, callback) served at /debug/trace, with stage-latency
// histograms in /metrics; frames slower than -trace.slow land in the
// slow-frame log. -log-format json emits structured one-line-JSON
// lifecycle events (session open/end, evictions, quarantines, governor
// rung moves, admission refusals) on stderr, independent of -v.
//
// The governor flags tune the adaptive fidelity layer: every -governor
// tick each adaptive session is checked against its queue and
// shadow-memory (-mem-budget) pressure and moved along the fidelity
// ladder full → sampled(-sample-rate) → coarse → shed, and any session
// whose worker makes no progress for -stuck-timeout is quarantined.
// Admission refusals at the session cap carry the -retry-after redial
// hint.
//
// The HTTP listener (enabled by -http) serves:
//
//	/metrics              the live svc.* metrics registry as JSON
//	/sessions             summaries of live and recently finished sessions
//	/sessions/{id}/races  a session's current race reports (with provenance
//	                      evidence on sessions opened with it)
//	/sessions/{id}/stats  a session's detector statistics and health
//	/debug/trace          recent frame spans and the slow-frame log (-trace)
//	/healthz              liveness (always 200 while serving)
//	/readyz               readiness (503 when draining or at the session cap)
//
// On SIGINT/SIGTERM the daemon drains gracefully: it stops accepting,
// lets every session's already-received frames finish analysis,
// finalizes the sessions (writing JSON reports under -report.dir), and
// exits 0. Events a client has received a Flush acknowledgement for are
// never lost to a drain.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"fasttrack/internal/svc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7766", "TCP listen address for ingestion sessions")
	httpAddr := flag.String("http", "", "HTTP listen address for /metrics and /sessions (disabled if empty)")
	queue := flag.Int("queue", 64, "per-session frame queue depth (bounds buffered-but-unprocessed frames)")
	maxFrame := flag.Int("max-frame", 0, "maximum accepted frame payload in bytes (0 = default 4MiB)")
	maxSessions := flag.Int("max-sessions", 256, "concurrent session cap")
	idle := flag.Duration("idle", 5*time.Minute, "evict sessions idle for this long (0 = never)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-drain budget on SIGTERM")
	reportDir := flag.String("report.dir", "", "write one JSON report per finished session into this directory")
	governor := flag.Duration("governor", 0, "fidelity governor tick interval (0 = default 250ms, negative = disabled)")
	stuck := flag.Duration("stuck-timeout", 0, "quarantine sessions whose worker makes no progress for this long (0 = default 30s, negative = disabled)")
	memBudget := flag.Int64("mem-budget", 0, "per-session shadow-memory budget in bytes before the governor degrades fidelity (0 = no memory signal)")
	sampleRate := flag.Float64("sample-rate", 0, "default sampled-rung rate for sessions that pick none (0 = default 0.25)")
	retryAfter := flag.Duration("retry-after", 0, "redial hint on session-cap refusals (0 = default 1s)")
	tracing := flag.Bool("trace", false, "enable the pipeline tracer (/debug/trace, svc.stage.* histograms)")
	traceSlow := flag.Duration("trace.slow", 0, "slow-frame log threshold (0 = default 50ms)")
	traceSpans := flag.Int("trace.spans", 0, "recent-span ring capacity (0 = default 256)")
	logFormat := flag.String("log-format", "text", "lifecycle log format: text (free-form, needs -v) or json (structured one-line events)")
	node := flag.String("node", "", "this daemon's fleet identity, published in /readyz, refusals, and session listings (empty = unnamed single node)")
	verbose := flag.Bool("v", false, "log per-session lifecycle events")
	flag.Parse()

	logger := log.New(os.Stderr, "racedetectd: ", log.LstdFlags)
	logf := func(string, ...any) {}
	if *verbose {
		logf = logger.Printf
	}

	var eventLog func(svc.Event)
	switch *logFormat {
	case "text":
	case "json":
		// One JSON object per line on stderr, machine-parseable and
		// independent of the free-form -v lines.
		var mu sync.Mutex
		enc := json.NewEncoder(os.Stderr)
		eventLog = func(e svc.Event) {
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(struct {
				Time string `json:"time"`
				svc.Event
			}{time.Now().UTC().Format(time.RFC3339Nano), e})
		}
	default:
		logger.Fatalf("unknown -log-format %q (want text or json)", *logFormat)
	}

	srv := svc.New(svc.Config{
		QueueDepth:         *queue,
		MaxFramePayload:    *maxFrame,
		MaxSessions:        *maxSessions,
		IdleTimeout:        *idle,
		ReportDir:          *reportDir,
		GovernorInterval:   *governor,
		StuckTimeout:       *stuck,
		SessionMemBudget:   *memBudget,
		DefaultSampleRate:  *sampleRate,
		RetryAfterHint:     *retryAfter,
		Tracing:            *tracing,
		SlowFrameThreshold: *traceSlow,
		TraceSpans:         *traceSpans,
		NodeID:             *node,
		Logf:               logf,
		EventLog:           eventLog,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// The ready line goes to stdout so supervisors (and the CI harness)
	// can wait for it; with -addr :0 it carries the chosen port.
	fmt.Printf("racedetectd: listening on %s\n", ln.Addr())
	os.Stdout.Sync()

	var httpSrv *http.Server
	if *httpAddr != "" {
		hln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			logger.Fatal(err)
		}
		fmt.Printf("racedetectd: http on %s\n", hln.Addr())
		httpSrv = &http.Server{Handler: srv.Handler()}
		go func() {
			if err := httpSrv.Serve(hln); err != nil && err != http.ErrServerClosed {
				logger.Print("http:", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v, draining (budget %v)", s, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Print(err)
			os.Exit(1)
		}
		if httpSrv != nil {
			httpSrv.Shutdown(context.Background())
		}
		logger.Print("drained cleanly")
	case err := <-serveErr:
		if err != nil {
			logger.Fatal(err)
		}
	}
}
