// Command racebench regenerates the tables and figures of the FastTrack
// paper's evaluation (Section 5) from this module's synthetic workloads.
//
// Usage:
//
//	racebench [-table all|1|2|3|rules|compose|eclipse|ops|shards|batch] [-scale N] [-runs N]
//
// Table 1: slowdown and warnings for seven tools on sixteen benchmarks.
// Table 2: vector clocks allocated / O(n) VC operations, DJIT+ vs
// FastTrack. Table 3: memory overhead and slowdown, fine vs coarse
// granularity. "rules": the Figure 2 rule-frequency percentages.
// "compose": the Section 5.2 prefilter experiment. "eclipse": the
// Section 5.3 Eclipse-shaped experiment. "ops": per-detector analysis
// cost (ns/event) and constant-time path shares; with -out FILE it
// writes the machine-readable fasttrack/bench-ops/v1 JSON artifact
// (BENCH_ops.json in CI). "shards": live-Monitor ingestion throughput,
// serial vs lock-striped (WithShards), at 1/2/4/8 feeder goroutines;
// with -out FILE it writes the fasttrack/bench-scaling/v1 artifact
// (BENCH_scaling.json in CI). "batch": Monitor.IngestBatch throughput
// across batch sizes vs per-event Ingest, serial and sharded; with
// -out FILE it writes the fasttrack/bench-batch/v1 artifact
// (BENCH_batch.json in CI). "provenance": FastTrack throughput with
// the provenance flight recorder off vs on across workload mixes; with
// -out FILE it writes the fasttrack/bench-provenance/v1 artifact
// (BENCH_provenance.json in CI). "speed": serial per-event throughput
// of the struct-of-arrays shadow layout against the frozen pre-refactor
// baseline (DESIGN.md §13); with -out FILE it writes the
// fasttrack/bench-speed/v1 artifact (BENCH_speed.json in CI, gated at
// geomean >= 2x). "chan": channel happens-before cost and precision
// against the legacy volatile encoding on channel-heavy workloads
// (DESIGN.md §14); with -out FILE it writes the fasttrack/bench-chan/v1
// artifact (BENCH_chan.json in CI). "fleet": routed session throughput
// against 1/2/4 in-process racedetectd nodes — fixed worker population,
// capped session slots per node, client.Fleet steering refused dials to
// free capacity (DESIGN.md §15); with -out FILE it writes the
// fasttrack/bench-fleet/v1 artifact (BENCH_fleet.json in CI, gated at
// 2-node speedup >= 1.8x). Fleet spins real TCP servers, so it is not
// part of -table all.
package main

import (
	"flag"
	"fmt"
	"os"

	"fasttrack/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: all, 1, 2, 3, rules, compose, eclipse, scaling, accordion, ops, shards, batch, fidelity, provenance, speed, chan, fleet")
	scale := flag.Float64("scale", 1, "workload scale factor")
	runs := flag.Int("runs", 3, "timed repetitions per cell (fastest kept)")
	asCSV := flag.Bool("csv", false, "emit machine-readable CSV instead of formatted tables (tables 1, 2, 3, compose, scaling, accordion)")
	out := flag.String("out", "", "for -table ops/shards/batch/fidelity: also write the JSON artifact to this file")
	flag.Parse()

	cfg := bench.DefaultConfig()
	cfg.Scale = *scale
	cfg.Runs = *runs

	check := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "racebench:", err)
			os.Exit(1)
		}
	}
	run := func(name string) {
		if *asCSV {
			switch name {
			case "1":
				check(bench.Table1CSV(os.Stdout, bench.Table1(cfg)))
			case "2":
				check(bench.Table2CSV(os.Stdout, bench.Table2(cfg)))
			case "3":
				check(bench.Table3CSV(os.Stdout, bench.Table3(cfg)))
			case "compose":
				check(bench.ComposeCSV(os.Stdout, bench.Compose(cfg)))
			case "scaling":
				check(bench.ScalingCSV(os.Stdout, bench.Scaling(cfg, nil)))
			case "accordion":
				check(bench.AccordionCSV(os.Stdout, bench.Accordion(cfg, nil)))
			default:
				fmt.Fprintf(os.Stderr, "racebench: no CSV renderer for table %q\n", name)
				os.Exit(2)
			}
			return
		}
		switch name {
		case "1":
			fmt.Println("=== Table 1: slowdowns and warnings ===")
			bench.FprintTable1(os.Stdout, bench.Table1(cfg))
		case "2":
			fmt.Println("=== Table 2: vector clock allocation and usage ===")
			bench.FprintTable2(os.Stdout, bench.Table2(cfg))
		case "3":
			fmt.Println("=== Table 3: fine vs coarse granularity ===")
			bench.FprintTable3(os.Stdout, bench.Table3(cfg))
		case "rules":
			fmt.Println("=== Figure 2: operation mix and rule frequencies ===")
			bench.FprintRules(os.Stdout, bench.RuleFrequencies(cfg))
		case "compose":
			fmt.Println("=== Section 5.2: analysis composition ===")
			bench.FprintCompose(os.Stdout, bench.Compose(cfg))
		case "eclipse":
			fmt.Println("=== Section 5.3: Eclipse-shaped workloads ===")
			bench.FprintEclipse(os.Stdout, bench.Eclipse(cfg))
		case "scaling":
			fmt.Println("=== Ablation: thread-count scaling (O(1) epochs vs O(n) VCs) ===")
			bench.FprintScaling(os.Stdout, bench.Scaling(cfg, nil))
		case "accordion":
			fmt.Println("=== Extension: accordion-style dead-thread compaction ===")
			bench.FprintAccordion(os.Stdout, bench.Accordion(cfg, nil))
		case "ops":
			fmt.Println("=== Per-detector cost and operation mix ===")
			rep := bench.Ops(cfg, nil, nil)
			bench.FprintOps(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteOpsJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "shards":
			fmt.Println("=== Extension: sharded Monitor ingestion throughput ===")
			rep := bench.ShardScaling(cfg, nil, nil, 0)
			bench.FprintShardScaling(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteShardScalingJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "batch":
			fmt.Println("=== Extension: batched Monitor ingestion throughput ===")
			rep := bench.Batch(cfg, nil, 0, 0)
			bench.FprintBatch(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteBatchJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "fidelity":
			fmt.Println("=== Extension: sampling-tier cost/coverage curve ===")
			rep := bench.Fidelity(cfg, nil, 0, 0)
			bench.FprintFidelity(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteFidelityJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "provenance":
			fmt.Println("=== Extension: provenance flight-recorder overhead ===")
			rep := bench.Provenance(cfg, 0)
			bench.FprintProvenance(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteProvenanceJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "speed":
			fmt.Println("=== Refactor gate: raw shadow-layout speed vs frozen baseline ===")
			rep, err := bench.Speed(cfg)
			check(err)
			bench.FprintSpeed(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteSpeedJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "chan":
			fmt.Println("=== Extension: channel happens-before vs volatile encoding ===")
			rep := bench.Chan(cfg, 0)
			bench.FprintChan(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteChanJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		case "fleet":
			fmt.Println("=== Extension: fleet-routed session throughput ===")
			rep, err := bench.Fleet(cfg, 0)
			check(err)
			bench.FprintFleet(os.Stdout, rep)
			if *out != "" {
				f, err := os.Create(*out)
				check(err)
				check(bench.WriteFleetJSON(f, rep))
				check(f.Close())
				fmt.Fprintf(os.Stderr, "racebench: wrote %s\n", *out)
			}
		default:
			fmt.Fprintf(os.Stderr, "racebench: unknown table %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *table == "all" {
		for _, name := range []string{"1", "2", "3", "rules", "compose", "eclipse", "scaling", "accordion", "ops", "shards", "batch", "fidelity", "provenance", "speed", "chan"} {
			run(name)
		}
		return
	}
	run(*table)
}
