// Command racedetect runs one or more dynamic race detectors over a
// recorded trace file (text or binary; the format is auto-detected) and
// prints each tool's warnings and statistics.
//
// Usage:
//
//	racedetect [-tool FastTrack] [-all] [-granularity fine|coarse]
//	           [-validate] [-stats] [-policy off|strict|repair|drop]
//	           [-membudget bytes] trace-file
//	racedetect -chaos [trace-file]
//
// With "-" as the file name the trace is read from standard input.
// -chaos runs the fault-injection smoke suite: every registered
// detector is driven through systematically corrupted variants of the
// trace (or of a generated random trace when no file is given),
// asserting that no panic escapes and all degradation is accounted for.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"

	"fasttrack"
	"fasttrack/internal/chaos"
	"fasttrack/internal/hb"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

func main() {
	toolName := flag.String("tool", "FastTrack", "detector to run (see -list)")
	all := flag.Bool("all", false, "run every detector and compare")
	gran := flag.String("granularity", "fine", "shadow granularity: fine or coarse")
	validate := flag.Bool("validate", true, "check trace feasibility")
	stats := flag.Bool("stats", false, "print instrumentation statistics")
	explain := flag.Bool("explain", false, "for each FastTrack warning, show both racing accesses and why nothing orders them (implies -tool FastTrack)")
	stream := flag.Bool("stream", false, "process the trace incrementally without loading it into memory (single tool only)")
	policyName := flag.String("policy", "off", "stream-validation policy: off, strict, repair, or drop")
	memBudget := flag.Int64("membudget", 0, "FastTrack shadow-memory budget in bytes (0 = unbounded)")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection smoke suite over every detector")
	list := flag.Bool("list", false, "list available detectors and exit")
	flag.Parse()

	if *list {
		for _, n := range fasttrack.ToolNames() {
			fmt.Println(n)
		}
		return
	}

	policy, ok := rr.PolicyFromString(*policyName)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q (want off, strict, repair, or drop)", *policyName))
	}

	if *chaosMode {
		runChaos(flag.Args())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [flags] trace-file")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g := fasttrack.Fine
	switch *gran {
	case "fine":
	case "coarse":
		g = fasttrack.Coarse
	default:
		fatal(fmt.Errorf("unknown granularity %q", *gran))
	}

	if *stream {
		if *all {
			fatal(fmt.Errorf("-stream runs a single tool; drop -all"))
		}
		tool, err := fasttrack.NewTool(*toolName, fasttrack.Hints{})
		if err != nil {
			fatal(err)
		}
		r, closeFn, err := openInput(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer closeFn()
		if policy != fasttrack.PolicyOff {
			races, events, health, err := replayStreamResilient(r, tool, g, policy)
			printReport(tool, races, *stats)
			printHealth(health)
			fmt.Printf("(%d events, streamed)\n", events)
			if err != nil {
				fatal(err)
			}
			if health.Err != nil {
				fatal(fmt.Errorf("strict validation: %w", health.Err))
			}
			if len(races) > 0 {
				os.Exit(1)
			}
			return
		}
		races, events, err := fasttrack.ReplayStream(r, tool, g, *validate)
		if err != nil {
			fatal(err)
		}
		printReport(tool, races, *stats)
		fmt.Printf("(%d events, streamed)\n", events)
		if len(races) > 0 {
			os.Exit(1)
		}
		return
	}

	tr, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("infeasible trace: %w", err))
		}
	}

	if *explain {
		explainRaces(tr, g)
		return
	}

	names := []string{*toolName}
	if *all {
		names = []string{"Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"}
	}

	exit := 0
	for _, name := range names {
		tool, err := fasttrack.NewTool(name, fasttrack.Hints{Threads: tr.Threads(), MemoryBudget: *memBudget})
		if err != nil {
			fatal(err)
		}
		var races []fasttrack.Report
		if policy != fasttrack.PolicyOff {
			var health fasttrack.Health
			races, health = fasttrack.ReplayResilient(tr, tool, g, policy)
			printReport(tool, races, *stats)
			printHealth(health)
			if health.Err != nil {
				fatal(fmt.Errorf("strict validation: %w", health.Err))
			}
		} else {
			races = fasttrack.Replay(tr, tool, g)
			printReport(tool, races, *stats)
		}
		if len(races) > 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

// replayStreamResilient is the streaming analog of ReplayResilient:
// events are validated online under the policy as they are decoded.
func replayStreamResilient(r io.Reader, tool fasttrack.Tool, g fasttrack.Granularity, p fasttrack.Policy) ([]fasttrack.Report, int, fasttrack.Health, error) {
	d := rr.NewDispatcher(tool)
	d.Granularity = g
	d.Policy = p
	sc := trace.NewScanner(r)
	for sc.Scan() {
		d.Event(sc.Event())
	}
	return tool.Races(), sc.Index(), d.Health(), sc.Err()
}

// printHealth renders the pipeline's degradation snapshot.
func printHealth(h fasttrack.Health) {
	if h.Healthy {
		fmt.Println("  pipeline: healthy")
		return
	}
	fmt.Printf("  pipeline: violations=%d repaired=%d dropped=%d synthesized=%d panics=%d quarantined=%d\n",
		h.Violations, h.Repaired, h.Dropped, h.Synthesized, h.Panics, h.QuarantinedLocations)
	for _, v := range h.ViolationLog {
		fmt.Printf("    %s\n", v)
	}
	for _, p := range h.PanicLog {
		fmt.Printf("    %s\n", p)
	}
	if h.ToolDisabled {
		fmt.Println("    tool disabled after exceeding the panic budget")
	}
}

// runChaos is the -chaos smoke mode: corrupt a base trace every way the
// harness knows and sweep every registered detector through the result
// under the repair policy, checking the degradation accounting.
func runChaos(args []string) {
	var base trace.Trace
	if len(args) == 1 {
		var err error
		base, err = readTrace(args[0])
		if err != nil {
			fatal(err)
		}
	} else if len(args) == 0 {
		base = sim.RandomTrace(rand.New(rand.NewSource(1)), sim.DefaultRandomConfig())
		fmt.Printf("chaos: no trace file; using a random feasible trace (%d events)\n", len(base))
	} else {
		fatal(fmt.Errorf("-chaos takes at most one trace file"))
	}

	failures := 0
	for _, name := range fasttrack.ToolNames() {
		for _, mode := range chaos.Modes() {
			for _, seed := range []int64{1, 2, 3} {
				tool, err := fasttrack.NewTool(name, fasttrack.Hints{})
				if err != nil {
					fatal(err)
				}
				res := chaos.Run(tool, base, mode, seed, fasttrack.PolicyRepair)
				if err := res.Check(); err != nil {
					failures++
					fmt.Printf("FAIL %v\n", err)
					continue
				}
				if seed == 1 {
					h := res.Health
					fmt.Printf("  %-16s %-12s events=%-5d races=%-3d violations=%-4d repaired=%-4d dropped=%-4d\n",
						name, mode, res.Events, res.Races, h.Violations, h.Repaired, h.Dropped)
				}
			}
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("chaos: %d accounting failure(s)", failures))
	}
	fmt.Println("chaos: OK")
}

// explainRaces runs FastTrack with detailed reports and renders, for
// each warning, both racing accesses and the happens-before evidence (or
// its absence) from the oracle.
func explainRaces(tr trace.Trace, g fasttrack.Granularity) {
	tool, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{DetailedReports: true})
	if err != nil {
		fatal(err)
	}
	races := fasttrack.Replay(tr, tool, g)
	fmt.Printf("FastTrack: %d warning(s)\n", len(races))
	if len(races) == 0 {
		return
	}
	oracle := hb.New(tr)
	for _, r := range races {
		fmt.Printf("\n%s\n", r)
		if r.PrevIndex < 0 || r.Index >= len(tr) {
			fmt.Println("  (no recorded prior access; re-run the producer with detailed reports)")
			continue
		}
		fmt.Printf("  first access:  event %d: %s\n", r.PrevIndex, tr[r.PrevIndex])
		fmt.Printf("  second access: event %d: %s\n", r.Index, tr[r.Index])
		ex := oracle.Explain(r.PrevIndex, r.Index)
		for _, line := range strings.Split(ex.Render(tr), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	os.Exit(1)
}

func printReport(tool fasttrack.Tool, races []fasttrack.Report, stats bool) {
	fmt.Printf("%s: %d warning(s)\n", tool.Name(), len(races))
	for _, r := range races {
		fmt.Printf("  %s\n", r)
	}
	if stats {
		st := tool.Stats()
		fmt.Printf("  events=%d reads=%d writes=%d syncs=%d vcAlloc=%d vcOps=%d shadowBytes=%d\n",
			st.Events, st.Reads, st.Writes, st.Syncs, st.VCAlloc, st.VCOp, st.ShadowBytes)
		if st.MemSqueezes > 0 || st.MemCoarse > 0 {
			fmt.Printf("  membudget: squeezes=%d coarseAccesses=%d\n", st.MemSqueezes, st.MemCoarse)
		}
	}
}

// openInput opens the trace source ("-" = stdin).
func openInput(path string) (io.Reader, func(), error) {
	if path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readTrace(path string) (trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	isBinary, err := trace.Sniff(br)
	if err != nil {
		return nil, err
	}
	if isBinary {
		return trace.ReadBinary(br)
	}
	return trace.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetect:", err)
	os.Exit(2)
}
