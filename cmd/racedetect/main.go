// Command racedetect runs one or more dynamic race detectors over a
// recorded trace file (text or binary; the format is auto-detected) and
// prints each tool's warnings and statistics.
//
// Usage:
//
//	racedetect [-tool FastTrack] [-all] [-granularity fine|coarse]
//	           [-validate] [-stats] [-policy off|strict|repair|drop]
//	           [-membudget bytes] [-shards N] [-batch N] [-json]
//	           [-fidelity full|sampled(p)|adaptive] [-provenance]
//	           [-json.file out.json] [-metrics.addr :6060] trace-file
//	racedetect -chaos [trace-file]
//
// -provenance runs the provenance flight recorder (FastTrack only):
// each warning then carries the vector clocks of both accesses, the
// exact happens-before comparison that failed, the racing threads'
// recent release/acquire chains, and a rendered "why this is a race"
// explanation — in the text output, the -json report, and (with
// -server) the daemon's results. Costs roughly one clock copy per
// analyzed access; see BENCH_provenance.json.
//
// -fidelity trades detection probability for analysis cost: sampled(p)
// analyzes the fraction p of the variable space (accesses to the rest
// are counted but not checked — a real race can be missed with
// probability about 1-p, and the report says what fraction was
// analyzed), and adaptive lets the racedetectd governor move the
// session along the full→sampled→coarse→shed ladder under pressure, so
// it requires -server.
//
// With "-" as the file name the trace is read from standard input.
// -chaos runs the fault-injection smoke suite: every registered
// detector is driven through systematically corrupted variants of the
// trace (or of a generated random trace when no file is given),
// asserting that no panic escapes and all degradation is accounted for.
//
// Observability:
//
//	-stats         adds a Table-2-style operation-mix breakdown per tool
//	-json          emits a machine-readable run report on stdout (the
//	               human-readable output moves to stderr); -json.file
//	               writes the report to a file instead
//	-metrics.addr  serves live metrics (JSON at /metrics) and
//	               net/http/pprof while the run is in flight
//	-stream        additionally emits periodic progress lines on stderr
//	               (events processed, rate, races so far, shadow bytes)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/internal/chaos"
	"fasttrack/internal/hb"
	"fasttrack/internal/obs"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

func main() {
	// Subcommand dispatch must precede flag.Parse: `racedetect run` and
	// `racedetect test` instrument and execute a real Go package, then
	// feed the captured trace back through the flag-based analysis path.
	if len(os.Args) > 1 && (os.Args[1] == "run" || os.Args[1] == "test") {
		runFrontend(os.Args[1], os.Args[2:])
		return
	}

	toolName := flag.String("tool", "FastTrack", "detector to run (see -list)")
	all := flag.Bool("all", false, "run every detector and compare")
	gran := flag.String("granularity", "fine", "shadow granularity: fine or coarse")
	validate := flag.Bool("validate", true, "check trace feasibility")
	stats := flag.Bool("stats", false, "print instrumentation statistics and the operation-mix table")
	explain := flag.Bool("explain", false, "for each FastTrack warning, show both racing accesses and why nothing orders them (implies -tool FastTrack)")
	stream := flag.Bool("stream", false, "process the trace incrementally without loading it into memory (single tool only)")
	policyName := flag.String("policy", "off", "stream-validation policy: off, strict, repair, or drop")
	memBudget := flag.Int64("membudget", 0, "FastTrack shadow-memory budget in bytes (0 = unbounded)")
	shards := flag.Int("shards", 1, "ingest through the lock-striped Monitor with this many stripes (single tool, -policy off, no -membudget or -stream)")
	batch := flag.Int("batch", 0, "replay through the Monitor in IngestBatch chunks of this many events (0 = per-event; same restrictions as -shards)")
	chaosMode := flag.Bool("chaos", false, "run the fault-injection smoke suite over every detector")
	jsonOut := flag.Bool("json", false, "write a machine-readable run report to stdout")
	jsonFile := flag.String("json.file", "", "write the run report to this file instead of stdout")
	metricsAddr := flag.String("metrics.addr", "", "serve live metrics and pprof on this address (e.g. :6060)")
	serverAddr := flag.String("server", "", "stream the trace to a racedetectd daemon at this address instead of analyzing locally")
	servers := flag.String("servers", "", "stream to a racedetectd fleet: comma-separated nodes (addr or addr=httpaddr each); the session routes to its owning node, steers around capped/draining nodes, and fails over if its node dies")
	fidelity := flag.String("fidelity", "", "analysis fidelity: full, sampled(p), or adaptive (adaptive requires -server)")
	provenance := flag.Bool("provenance", false, "record race provenance: each warning carries clock evidence, the failed happens-before check, the recent sync chain, and a rendered explanation (FastTrack only)")
	traceWire := flag.Bool("trace", false, "request pipeline tracing from the daemon: frames carry trace IDs and per-stage spans land in its /debug/trace (requires -server and a daemon started with -trace)")
	list := flag.Bool("list", false, "list available detectors and exit")
	flag.Parse()

	if *list {
		for _, n := range fasttrack.ToolNames() {
			fmt.Println(n)
		}
		return
	}

	policy, ok := rr.PolicyFromString(*policyName)
	if !ok {
		fatal(fmt.Errorf("unknown policy %q (want off, strict, repair, or drop)", *policyName))
	}

	fidMode, sampleRate, err := client.ParseFidelity(*fidelity)
	if err != nil {
		fatal(err)
	}
	if *serverAddr != "" && *servers != "" {
		fatal(fmt.Errorf("-server and -servers are mutually exclusive"))
	}
	remote := *serverAddr != "" || *servers != ""
	if fidMode == client.FidelityAdaptive && !remote {
		fatal(fmt.Errorf("-fidelity adaptive is governed by racedetectd; add -server"))
	}
	if fidMode == client.FidelitySampled && sampleRate == 0 {
		sampleRate = 0.25 // match the daemon's default sampled rung
	}

	if *provenance {
		if *all {
			fatal(fmt.Errorf("-provenance is a FastTrack feature; drop -all"))
		}
		if *toolName != "FastTrack" {
			fatal(fmt.Errorf("-provenance: tool %q does not support provenance recording", *toolName))
		}
	}

	if *chaosMode {
		runChaos(flag.Args())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [flags] trace-file")
		fmt.Fprintln(os.Stderr, "       racedetect run|test [flags] package-dir")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g := fasttrack.Fine
	switch *gran {
	case "fine":
	case "coarse":
		g = fasttrack.Coarse
	default:
		fatal(fmt.Errorf("unknown granularity %q", *gran))
	}

	if *traceWire && !remote {
		fatal(fmt.Errorf("-trace spans the client/daemon pipeline; add -server"))
	}
	if remote {
		if *all || *stream || *explain {
			fatal(fmt.Errorf("-server streams a single tool's batch run; drop -all/-stream/-explain"))
		}
		os.Exit(runRemote(flag.Arg(0), *serverAddr, *servers, *toolName, *gran, *policyName, *fidelity, *shards, *validate, *provenance, *traceWire, *jsonOut, *jsonFile))
	}

	ms, err := startMetrics(*metricsAddr)
	if err != nil {
		fatal(err)
	}

	jsonWanted := *jsonOut || *jsonFile != ""
	// With the report on stdout, the human-readable output moves to
	// stderr so stdout stays pure JSON.
	var humanOut io.Writer = os.Stdout
	if jsonWanted && *jsonFile == "" {
		humanOut = os.Stderr
	}
	rep := &runReport{Schema: runReportSchema, Trace: flag.Arg(0), Stream: *stream}

	if sampleRate > 0 && *all {
		fatal(fmt.Errorf("-fidelity samples a single tool's run; drop -all"))
	}

	if *stream {
		if *all {
			fatal(fmt.Errorf("-stream runs a single tool; drop -all"))
		}
		if *shards > 1 {
			fatal(fmt.Errorf("-shards applies to batch ingestion; drop -stream"))
		}
		exit := runStream(flag.Arg(0), *toolName, g, policy, sampleRate, *validate, *stats, jsonWanted, *provenance, *jsonFile, ms, rep, humanOut)
		finishJSON(jsonWanted, rep, *jsonFile)
		os.Exit(exit)
	}

	tr, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("infeasible trace: %w", err))
		}
	}

	if *explain {
		explainRaces(tr, g)
		return
	}

	if *shards > 1 || *batch > 0 {
		if *all {
			fatal(fmt.Errorf("-shards/-batch run a single tool; drop -all"))
		}
		if policy != fasttrack.PolicyOff {
			fatal(fmt.Errorf("-shards/-batch are incompatible with -policy %s (the stream validator is sequential)", *policyName))
		}
		if *memBudget != 0 {
			fatal(fmt.Errorf("-shards/-batch are incompatible with -membudget"))
		}
		exit := runMonitor(tr, *toolName, g, *shards, *batch, sampleRate, *stats, jsonWanted, *provenance, ms, rep, humanOut)
		finishJSON(jsonWanted, rep, *jsonFile)
		os.Exit(exit)
	}

	names := []string{*toolName}
	if *all {
		names = []string{"Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"}
	}

	exit := 0
	for _, name := range names {
		hints := fasttrack.Hints{Threads: tr.Threads(), MemoryBudget: *memBudget}
		// The JSON report renders both access sites of each race, which
		// needs FastTrack's access-history tracking.
		if jsonWanted && name == "FastTrack" {
			hints.DetailedReports = true
		}
		hints.Provenance = *provenance
		tool, err := fasttrack.NewTool(name, hints)
		if err != nil {
			fatal(err)
		}
		applySampleRate(tool, sampleRate)

		reg := obs.NewRegistry()
		ms.attach(reg)
		d := rr.NewDispatcher(tool)
		d.Granularity = g
		d.Policy = policy
		d.Obs = reg
		d.Feed(tr)

		races := tool.Races()
		health := d.Health()
		st := tool.Stats()
		d.FillStats(&st)
		rr.PublishStats(reg, "tool", st)
		reg.Gauge("tool.races").Set(int64(len(races)))

		var details []fasttrack.DetailedReport
		if *provenance {
			if dt, ok := tool.(rr.DetailedTool); ok {
				details = dt.DetailedRaces()
			}
		}

		printReport(humanOut, tool, races, st, *stats)
		printDetails(humanOut, details)
		if policy != fasttrack.PolicyOff {
			printHealth(humanOut, health)
		}
		if jsonWanted {
			rep.Tools = append(rep.Tools, toolReport{
				Tool:    tool.Name(),
				Events:  d.Fed,
				Races:   raceReportsDetailed(races, tr, details),
				Stats:   st,
				Health:  healthJSON(health),
				Metrics: reg.Snapshot(),
			})
		}
		if health.Err != nil {
			finishJSON(jsonWanted, rep, *jsonFile)
			fatal(fmt.Errorf("strict validation: %w", health.Err))
		}
		if len(races) > 0 {
			exit = 1
		}
	}
	finishJSON(jsonWanted, rep, *jsonFile)
	os.Exit(exit)
}

// applySampleRate starts a tool's sampling tier at the -fidelity rate
// (no-op at 0, i.e. full fidelity); a tool that cannot sample is a
// configuration error, not a silent full-fidelity run.
func applySampleRate(tool fasttrack.Tool, rate float64) {
	if rate <= 0 {
		return
	}
	s, ok := tool.(fasttrack.Sampled)
	if !ok {
		fatal(fmt.Errorf("-fidelity: tool %q does not support sampled analysis", tool.Name()))
	}
	s.SetSamplingRate(rate)
}

// runMonitor replays the trace through the Monitor (serial or
// lock-striped via -shards) instead of the raw dispatcher, optionally
// in IngestBatch chunks of batch events. A file replay is a single
// feeder, so -shards does not speed the analysis up — it exercises
// exactly the production concurrent path (striped locking, watermark
// slow path, reconciled metrics) against a recorded trace and reports
// the same race set as the serial path; -batch measures/exercises the
// amortized batch ingestion the racedetectd service uses per wire
// frame.
func runMonitor(tr trace.Trace, toolName string, g fasttrack.Granularity, shards, batch int,
	sampleRate float64, stats, jsonWanted, provenance bool, ms *metricsServer, rep *runReport, humanOut io.Writer) int {

	hints := fasttrack.Hints{Threads: tr.Threads(), Provenance: provenance}
	if jsonWanted && toolName == "FastTrack" {
		hints.DetailedReports = true
	}
	tool, err := fasttrack.NewTool(toolName, hints)
	if err != nil {
		fatal(err)
	}
	applySampleRate(tool, sampleRate)
	opts := []fasttrack.MonitorOption{
		fasttrack.WithTool(tool),
		fasttrack.WithGranularity(g),
	}
	if shards > 1 {
		if _, ok := tool.(fasttrack.ShardedTool); !ok {
			fatal(fmt.Errorf("-shards: tool %q does not support sharded ingestion", tool.Name()))
		}
		opts = append(opts, fasttrack.WithShards(shards))
	}

	mon := fasttrack.NewMonitor(opts...)
	ms.attach(mon.MetricsRegistry())
	if batch > 0 {
		for i := 0; i < len(tr); i += batch {
			mon.IngestBatch(tr[i:min(i+batch, len(tr))])
		}
	} else {
		for _, e := range tr {
			mon.Ingest(e)
		}
	}

	races := mon.Races()
	st := mon.Stats()
	health := mon.Health()
	snap := mon.Metrics() // also publishes tool.* and monitor.sharded.*
	var details []fasttrack.DetailedReport
	if provenance {
		details = mon.DetailedRaces()
	}

	printReport(humanOut, tool, races, st, stats)
	printDetails(humanOut, details)
	mode := "serial monitor"
	if mon.Shards() > 1 {
		mode = fmt.Sprintf("%d-stripe monitor", mon.Shards())
	}
	if batch > 0 {
		mode += fmt.Sprintf(", batch %d", batch)
	}
	fmt.Fprintf(humanOut, "(%d events via %s)\n", len(tr), mode)
	if jsonWanted {
		rep.Tools = append(rep.Tools, toolReport{
			Tool:    tool.Name(),
			Events:  int64(len(tr)),
			Races:   raceReportsDetailed(races, tr, details),
			Stats:   st,
			Health:  healthJSON(health),
			Metrics: snap,
		})
	}
	if len(races) > 0 {
		return 1
	}
	return 0
}

// runStream analyzes the trace incrementally with the full pipeline
// attached (validation policy, live metrics, progress reporting) and
// returns the process exit code.
func runStream(path, toolName string, g fasttrack.Granularity, policy fasttrack.Policy,
	sampleRate float64, validate, stats, jsonWanted, provenance bool, jsonPath string, ms *metricsServer, rep *runReport, humanOut io.Writer) int {

	tool, err := fasttrack.NewTool(toolName, fasttrack.Hints{Provenance: provenance})
	if err != nil {
		fatal(err)
	}
	applySampleRate(tool, sampleRate)
	r, closeFn, err := openInput(path)
	if err != nil {
		fatal(err)
	}
	defer closeFn()

	reg := obs.NewRegistry()
	ms.attach(reg)
	d := rr.NewDispatcher(tool)
	d.Granularity = g
	d.Policy = policy
	d.Obs = reg

	// Feasibility checking (the batch -validate semantics) applies only
	// under PolicyOff; a validating policy performs its own online checks.
	var feas *trace.Validator
	if policy == fasttrack.PolicyOff && validate {
		feas = trace.NewValidator()
	}

	sc := trace.NewScanner(r)
	prog := newProgress(reg)
	var feasErr error
	for sc.Scan() {
		e := sc.Event()
		if feas != nil {
			if err := feas.Event(e); err != nil {
				feasErr = err
				break
			}
		}
		d.Event(e)
		// Progress/metrics refresh on a coarse event-count grid so the
		// hot loop stays cheap between ticks.
		if d.Fed&8191 == 0 {
			prog.maybeTick(d.Fed, tool)
		}
	}
	if policy == fasttrack.PolicyOff {
		// Historical batch-equivalent behavior: feasibility or decode
		// errors abort before any report is printed.
		if feasErr != nil {
			fatal(feasErr)
		}
		if sc.Err() != nil {
			fatal(sc.Err())
		}
	}

	races := tool.Races()
	health := d.Health()
	st := tool.Stats()
	d.FillStats(&st)
	rr.PublishStats(reg, "tool", st)
	reg.Gauge("tool.races").Set(int64(len(races)))
	prog.final(d.Fed, len(races), st.ShadowBytes)

	var details []fasttrack.DetailedReport
	if provenance {
		if dt, ok := tool.(rr.DetailedTool); ok {
			details = dt.DetailedRaces()
		}
	}

	printReport(humanOut, tool, races, st, stats)
	printDetails(humanOut, details)
	if policy != fasttrack.PolicyOff {
		printHealth(humanOut, health)
	}
	fmt.Fprintf(humanOut, "(%d events, streamed)\n", sc.Index())

	if jsonWanted {
		rep.Tools = append(rep.Tools, toolReport{
			Tool:    tool.Name(),
			Events:  d.Fed,
			Races:   raceReportsDetailed(races, nil, details),
			Stats:   st,
			Health:  healthJSON(health),
			Metrics: reg.Snapshot(),
		})
	}

	if sc.Err() != nil {
		finishJSON(jsonWanted, rep, jsonPath)
		fatal(sc.Err())
	}
	if health.Err != nil {
		finishJSON(jsonWanted, rep, jsonPath)
		fatal(fmt.Errorf("strict validation: %w", health.Err))
	}
	if len(races) > 0 {
		return 1
	}
	return 0
}

// progress emits periodic one-line status reports on stderr during
// streaming runs and refreshes the tool.* gauges so a live /metrics
// scrape sees detector state, not only dispatcher counters.
type progress struct {
	reg        *obs.Registry
	start      time.Time
	last       time.Time
	lastEvents int64
	ticked     bool
}

// progressInterval is the minimum wall-clock spacing of progress lines.
const progressInterval = time.Second

func newProgress(reg *obs.Registry) *progress {
	now := time.Now()
	return &progress{reg: reg, start: now, last: now}
}

func (p *progress) maybeTick(events int64, tool fasttrack.Tool) {
	now := time.Now()
	if now.Sub(p.last) < progressInterval {
		return
	}
	st := tool.Stats()
	races := len(tool.Races())
	rr.PublishStats(p.reg, "tool", st)
	p.reg.Gauge("tool.races").Set(int64(races))
	rate := float64(events-p.lastEvents) / now.Sub(p.last).Seconds()
	fmt.Fprintf(os.Stderr, "racedetect: progress events=%d rate=%.0f/s races=%d shadowBytes=%d\n",
		events, rate, races, st.ShadowBytes)
	p.last = now
	p.lastEvents = events
	p.ticked = true
}

// final prints a closing progress line (only if any were printed, so
// short runs stay quiet) with the whole-run average rate.
func (p *progress) final(events int64, races int, shadowBytes int64) {
	if !p.ticked {
		return
	}
	el := time.Since(p.start).Seconds()
	rate := float64(events)
	if el > 0 {
		rate = float64(events) / el
	}
	fmt.Fprintf(os.Stderr, "racedetect: done events=%d avgRate=%.0f/s races=%d shadowBytes=%d\n",
		events, rate, races, shadowBytes)
}

// finishJSON emits the run report when requested.
func finishJSON(wanted bool, rep *runReport, path string) {
	if !wanted {
		return
	}
	if err := emitJSON(rep, path); err != nil {
		fmt.Fprintln(os.Stderr, "racedetect: writing report:", err)
		os.Exit(2)
	}
}

// printHealth renders the pipeline's degradation snapshot.
func printHealth(w io.Writer, h fasttrack.Health) {
	if h.Healthy {
		fmt.Fprintln(w, "  pipeline: healthy")
		return
	}
	fmt.Fprintf(w, "  pipeline: violations=%d repaired=%d dropped=%d synthesized=%d panics=%d quarantined=%d\n",
		h.Violations, h.Repaired, h.Dropped, h.Synthesized, h.Panics, h.QuarantinedLocations)
	for _, v := range h.ViolationLog {
		fmt.Fprintf(w, "    %s\n", v)
	}
	for _, p := range h.PanicLog {
		fmt.Fprintf(w, "    %s\n", p)
	}
	if h.ToolDisabled {
		fmt.Fprintln(w, "    tool disabled after exceeding the panic budget")
	}
}

// runChaos is the -chaos smoke mode: corrupt a base trace every way the
// harness knows and sweep every registered detector through the result
// under the repair policy, checking the degradation accounting.
func runChaos(args []string) {
	var base trace.Trace
	if len(args) == 1 {
		var err error
		base, err = readTrace(args[0])
		if err != nil {
			fatal(err)
		}
	} else if len(args) == 0 {
		base = sim.RandomTrace(rand.New(rand.NewSource(1)), sim.DefaultRandomConfig())
		fmt.Printf("chaos: no trace file; using a random feasible trace (%d events)\n", len(base))
	} else {
		fatal(fmt.Errorf("-chaos takes at most one trace file"))
	}

	failures := 0
	for _, name := range fasttrack.ToolNames() {
		for _, mode := range chaos.Modes() {
			for _, seed := range []int64{1, 2, 3} {
				tool, err := fasttrack.NewTool(name, fasttrack.Hints{})
				if err != nil {
					fatal(err)
				}
				res := chaos.Run(tool, base, mode, seed, fasttrack.PolicyRepair)
				if err := res.Check(); err != nil {
					failures++
					fmt.Printf("FAIL %v\n", err)
					continue
				}
				if seed == 1 {
					h := res.Health
					fmt.Printf("  %-16s %-12s events=%-5d races=%-3d violations=%-4d repaired=%-4d dropped=%-4d\n",
						name, mode, res.Events, res.Races, h.Violations, h.Repaired, h.Dropped)
				}
			}
		}
	}
	if failures > 0 {
		fatal(fmt.Errorf("chaos: %d accounting failure(s)", failures))
	}
	fmt.Println("chaos: OK")
}

// explainRaces runs FastTrack with detailed reports and renders, for
// each warning, both racing accesses and the happens-before evidence (or
// its absence) from the oracle.
func explainRaces(tr trace.Trace, g fasttrack.Granularity) {
	tool, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{DetailedReports: true})
	if err != nil {
		fatal(err)
	}
	races := fasttrack.Replay(tr, tool, g)
	fmt.Printf("FastTrack: %d warning(s)\n", len(races))
	if len(races) == 0 {
		return
	}
	oracle := hb.New(tr)
	for _, r := range races {
		fmt.Printf("\n%s\n", r)
		if r.PrevIndex < 0 || r.Index >= len(tr) {
			fmt.Println("  (no recorded prior access; re-run the producer with detailed reports)")
			continue
		}
		fmt.Printf("  first access:  event %d: %s\n", r.PrevIndex, tr[r.PrevIndex])
		fmt.Printf("  second access: event %d: %s\n", r.Index, tr[r.Index])
		ex := oracle.Explain(r.PrevIndex, r.Index)
		for _, line := range strings.Split(ex.Render(tr), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	os.Exit(1)
}

func printReport(w io.Writer, tool fasttrack.Tool, races []fasttrack.Report, st fasttrack.Stats, stats bool) {
	fmt.Fprintf(w, "%s: %d warning(s)\n", tool.Name(), len(races))
	for _, r := range races {
		fmt.Fprintf(w, "  %s\n", r)
	}
	// A sampled run's verdict is qualified: accesses outside the sampled
	// variable set were never checked, so "0 warnings" means "0 in the
	// analyzed fraction".
	if st.SampledOut > 0 {
		fmt.Fprintf(w, "  sampled analysis: detection probability %.3f (%d of %d accesses analyzed)\n",
			st.DetectionProbability(), st.Reads+st.Writes-st.SampledOut, st.Reads+st.Writes)
	}
	if stats {
		fmt.Fprintf(w, "  events=%d reads=%d writes=%d syncs=%d vcAlloc=%d vcOps=%d shadowBytes=%d\n",
			st.Events, st.Reads, st.Writes, st.Syncs, st.VCAlloc, st.VCOp, st.ShadowBytes)
		if st.MemSqueezes > 0 || st.MemCoarse > 0 {
			fmt.Fprintf(w, "  membudget: squeezes=%d coarseAccesses=%d\n", st.MemSqueezes, st.MemCoarse)
		}
		rr.FprintOpsMix(w, tool.Name(), st)
	}
}

// printDetails renders the provenance evidence of each warning, one
// blank-line-separated block per race, indented to match printReport's
// warning lines. The remote path (-server) prints the daemon's details
// through the same function, so local and remote -provenance output is
// byte-identical for the same trace.
func printDetails(w io.Writer, details []fasttrack.DetailedReport) {
	for _, d := range details {
		fmt.Fprintln(w)
		for _, line := range strings.Split(d.Explanation, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	if len(details) > 0 {
		fmt.Fprintln(w)
	}
}

// openInput opens the trace source ("-" = stdin).
func openInput(path string) (io.Reader, func(), error) {
	if path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readTrace(path string) (trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	isBinary, err := trace.Sniff(br)
	if err != nil {
		return nil, err
	}
	if isBinary {
		return trace.ReadBinary(br)
	}
	return trace.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetect:", err)
	os.Exit(2)
}
