// Command racedetect runs one or more dynamic race detectors over a
// recorded trace file (text or binary; the format is auto-detected) and
// prints each tool's warnings and statistics.
//
// Usage:
//
//	racedetect [-tool FastTrack] [-all] [-granularity fine|coarse]
//	           [-validate] [-stats] trace-file
//
// With "-" as the file name the trace is read from standard input.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fasttrack"
	"fasttrack/internal/hb"
	"fasttrack/trace"
)

func main() {
	toolName := flag.String("tool", "FastTrack", "detector to run (see -list)")
	all := flag.Bool("all", false, "run every detector and compare")
	gran := flag.String("granularity", "fine", "shadow granularity: fine or coarse")
	validate := flag.Bool("validate", true, "check trace feasibility")
	stats := flag.Bool("stats", false, "print instrumentation statistics")
	explain := flag.Bool("explain", false, "for each FastTrack warning, show both racing accesses and why nothing orders them (implies -tool FastTrack)")
	stream := flag.Bool("stream", false, "process the trace incrementally without loading it into memory (single tool only)")
	list := flag.Bool("list", false, "list available detectors and exit")
	flag.Parse()

	if *list {
		for _, n := range fasttrack.ToolNames() {
			fmt.Println(n)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: racedetect [flags] trace-file")
		flag.PrintDefaults()
		os.Exit(2)
	}

	g := fasttrack.Fine
	switch *gran {
	case "fine":
	case "coarse":
		g = fasttrack.Coarse
	default:
		fatal(fmt.Errorf("unknown granularity %q", *gran))
	}

	if *stream {
		if *all {
			fatal(fmt.Errorf("-stream runs a single tool; drop -all"))
		}
		tool, err := fasttrack.NewTool(*toolName, fasttrack.Hints{})
		if err != nil {
			fatal(err)
		}
		r, closeFn, err := openInput(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer closeFn()
		races, events, err := fasttrack.ReplayStream(r, tool, g, *validate)
		if err != nil {
			fatal(err)
		}
		printReport(tool, races, *stats)
		fmt.Printf("(%d events, streamed)\n", events)
		if len(races) > 0 {
			os.Exit(1)
		}
		return
	}

	tr, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *validate {
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("infeasible trace: %w", err))
		}
	}

	if *explain {
		explainRaces(tr, g)
		return
	}

	names := []string{*toolName}
	if *all {
		names = []string{"Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"}
	}

	exit := 0
	for _, name := range names {
		tool, err := fasttrack.NewTool(name, fasttrack.Hints{Threads: tr.Threads()})
		if err != nil {
			fatal(err)
		}
		races := fasttrack.Replay(tr, tool, g)
		printReport(tool, races, *stats)
		if len(races) > 0 {
			exit = 1
		}
	}
	os.Exit(exit)
}

// explainRaces runs FastTrack with detailed reports and renders, for
// each warning, both racing accesses and the happens-before evidence (or
// its absence) from the oracle.
func explainRaces(tr trace.Trace, g fasttrack.Granularity) {
	tool, err := fasttrack.NewTool("FastTrack", fasttrack.Hints{DetailedReports: true})
	if err != nil {
		fatal(err)
	}
	races := fasttrack.Replay(tr, tool, g)
	fmt.Printf("FastTrack: %d warning(s)\n", len(races))
	if len(races) == 0 {
		return
	}
	oracle := hb.New(tr)
	for _, r := range races {
		fmt.Printf("\n%s\n", r)
		if r.PrevIndex < 0 || r.Index >= len(tr) {
			fmt.Println("  (no recorded prior access; re-run the producer with detailed reports)")
			continue
		}
		fmt.Printf("  first access:  event %d: %s\n", r.PrevIndex, tr[r.PrevIndex])
		fmt.Printf("  second access: event %d: %s\n", r.Index, tr[r.Index])
		ex := oracle.Explain(r.PrevIndex, r.Index)
		for _, line := range strings.Split(ex.Render(tr), "\n") {
			fmt.Printf("  %s\n", line)
		}
	}
	os.Exit(1)
}

func printReport(tool fasttrack.Tool, races []fasttrack.Report, stats bool) {
	fmt.Printf("%s: %d warning(s)\n", tool.Name(), len(races))
	for _, r := range races {
		fmt.Printf("  %s\n", r)
	}
	if stats {
		st := tool.Stats()
		fmt.Printf("  events=%d reads=%d writes=%d syncs=%d vcAlloc=%d vcOps=%d shadowBytes=%d\n",
			st.Events, st.Reads, st.Writes, st.Syncs, st.VCAlloc, st.VCOp, st.ShadowBytes)
	}
}

// openInput opens the trace source ("-" = stdin).
func openInput(path string) (io.Reader, func(), error) {
	if path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func readTrace(path string) (trace.Trace, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	br := bufio.NewReader(r)
	isBinary, err := trace.Sniff(br)
	if err != nil {
		return nil, err
	}
	if isBinary {
		return trace.ReadBinary(br)
	}
	return trace.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "racedetect:", err)
	os.Exit(2)
}
