package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync/atomic"

	"fasttrack/internal/obs"
)

// metricsServer serves the live metrics registry at /metrics (expvar-
// style JSON) and the standard net/http/pprof endpoints under
// /debug/pprof/, for profiling a long analysis run in flight. The
// registry pointer is swapped atomically as runs start (one registry
// per tool run), so a scrape always sees the active pipeline.
type metricsServer struct {
	cur atomic.Pointer[obs.Registry]
	ln  net.Listener
}

// startMetrics begins serving on addr (e.g. ":6060"). It returns nil
// when addr is empty. Serving starts immediately so a scrape during the
// run works; before the first registry is attached, /metrics returns an
// empty snapshot.
func startMetrics(addr string) (*metricsServer, error) {
	if addr == "" {
		return nil, nil
	}
	ms := &metricsServer{}
	ms.cur.Store(obs.NewRegistry())
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		ms.cur.Load().Handler().ServeHTTP(w, r)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	ms.ln = ln
	fmt.Fprintf(os.Stderr, "racedetect: metrics on http://%s/metrics (pprof at /debug/pprof/)\n", ln.Addr())
	go func() {
		// The listener lives for the process; Serve only returns on a
		// listener error, which there is no way to recover from here.
		_ = http.Serve(ln, mux)
	}()
	return ms, nil
}

// attach makes reg the registry served at /metrics.
func (ms *metricsServer) attach(reg *obs.Registry) {
	if ms != nil {
		ms.cur.Store(reg)
	}
}
