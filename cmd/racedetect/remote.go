package main

import (
	"fmt"
	"io"
	"os"

	"fasttrack/client"
)

// runRemote streams the trace to a racedetectd daemon instead of
// analyzing it in-process, and renders the session's final report in
// exactly the local batch format (so local and remote runs diff clean);
// the transport note goes to stderr. With a non-empty servers spec the
// session is fleet-routed (client.DialFleet): it lands on the key's
// owning node, steers around capped/draining/dead nodes, and fails over
// mid-stream if its node dies. Returns the process exit code.
func runRemote(path, addr, servers, toolName, gran, policyName, fidelity string, shards int, validate, provenance, traceWire, jsonOut bool, jsonFile string) int {
	tr, err := readTrace(path)
	if err != nil {
		fatal(err)
	}
	if validate {
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("infeasible trace: %w", err))
		}
	}

	jsonWanted := jsonOut || jsonFile != ""

	opts := []client.Option{
		client.WithTool(toolName),
		client.WithGranularity(gran),
	}
	if jsonWanted && toolName == "FastTrack" {
		// Same gate as the local path: JSON FastTrack reports carry the
		// prior access's event index, so local and remote race lists for
		// the same trace diff clean.
		opts = append(opts, client.WithDetailedReports())
	}
	if policyName != "" && policyName != "off" {
		opts = append(opts, client.WithValidation(policyName))
	}
	if shards > 1 {
		opts = append(opts, client.WithShards(shards))
	}
	if fidelity != "" {
		opts = append(opts, client.WithFidelity(fidelity))
	}
	if provenance {
		opts = append(opts, client.WithProvenance())
	}
	if traceWire {
		opts = append(opts, client.WithTracing())
	}
	var sess *client.Session
	if servers != "" {
		// Fleet mode: reconnect budget covers mid-stream node failover
		// (a one-shot CLI run otherwise fails closed on its node dying).
		opts = append(opts, client.WithReconnect(4))
		sess, err = client.DialFleet(servers, opts...)
	} else {
		sess, err = client.Dial(addr, opts...)
	}
	if err != nil {
		fatal(err)
	}
	addr = sess.Addr()
	for _, e := range tr {
		if err := sess.Write(e); err != nil {
			fatal(fmt.Errorf("streaming to %s: %w", addr, err))
		}
	}
	if err := sess.Close(); err != nil {
		fatal(fmt.Errorf("closing session: %w", err))
	}
	res, err := sess.Results()
	if err != nil {
		fatal(err)
	}

	// With the JSON report on stdout, the human-readable output moves to
	// stderr so stdout stays pure JSON (same convention as local runs).
	var humanOut io.Writer = os.Stdout
	if jsonWanted && jsonFile == "" {
		humanOut = os.Stderr
	}

	fmt.Fprintf(humanOut, "%s: %d warning(s)\n", res.Tool, len(res.Races))
	for _, r := range res.Races {
		fmt.Fprintf(humanOut, "  %s\n", r)
	}
	printDetails(humanOut, res.Detailed)
	// The daemon may have analyzed only a fraction of the offered
	// accesses (a sampled/adaptive session, or a force-sampled admission
	// under load); qualify the verdict.
	if res.DetectionProbability > 0 && res.DetectionProbability < 1 {
		fmt.Fprintf(humanOut, "  sampled analysis: detection probability %.3f\n", res.DetectionProbability)
	}
	if jsonWanted {
		rep := &runReport{Schema: runReportSchema, Trace: path, Tools: []toolReport{{
			Tool:   res.Tool,
			Events: res.Events,
			Races:  raceReportsDetailed(res.Races, tr, res.Detailed),
			Stats:  res.Stats,
			Health: healthReport{
				Healthy:              res.Health.Healthy,
				ToolDisabled:         res.Health.ToolDisabled,
				Panics:               res.Health.Panics,
				QuarantinedLocations: res.Health.QuarantinedLocations,
				QuarantinedAccesses:  res.Health.QuarantinedAccesses,
				Violations:           res.Health.Violations,
				Repaired:             res.Health.Repaired,
				Dropped:              res.Health.Dropped,
				Synthesized:          res.Health.Synthesized,
				UnheldReleases:       res.Health.UnheldReleases,
				Error:                res.Health.Err,
			},
		}}}
		if err := emitJSON(rep, jsonFile); err != nil {
			fatal(err)
		}
	}
	where := sess.Addr()
	if n := sess.Node(); n != "" {
		where = fmt.Sprintf("%s, node %s", where, n)
	}
	fmt.Fprintf(os.Stderr, "racedetect: %d events analyzed remotely (session %s on %s)\n",
		res.Events, res.SessionID, where)
	if len(res.Races) > 0 {
		return 1
	}
	return 0
}
