package main

import (
	"fmt"
	"os"

	"fasttrack/client"
)

// runRemote streams the trace to a racedetectd daemon instead of
// analyzing it in-process, and renders the session's final report in
// exactly the local batch format (so local and remote runs diff clean);
// the transport note goes to stderr. Returns the process exit code.
func runRemote(path, addr, toolName, gran, policyName, fidelity string, shards int, validate, provenance, traceWire bool) int {
	tr, err := readTrace(path)
	if err != nil {
		fatal(err)
	}
	if validate {
		if err := tr.Validate(); err != nil {
			fatal(fmt.Errorf("infeasible trace: %w", err))
		}
	}

	opts := []client.Option{
		client.WithTool(toolName),
		client.WithGranularity(gran),
	}
	if policyName != "" && policyName != "off" {
		opts = append(opts, client.WithValidation(policyName))
	}
	if shards > 1 {
		opts = append(opts, client.WithShards(shards))
	}
	if fidelity != "" {
		opts = append(opts, client.WithFidelity(fidelity))
	}
	if provenance {
		opts = append(opts, client.WithProvenance())
	}
	if traceWire {
		opts = append(opts, client.WithTracing())
	}
	sess, err := client.Dial(addr, opts...)
	if err != nil {
		fatal(err)
	}
	for _, e := range tr {
		if err := sess.Write(e); err != nil {
			fatal(fmt.Errorf("streaming to %s: %w", addr, err))
		}
	}
	if err := sess.Close(); err != nil {
		fatal(fmt.Errorf("closing session: %w", err))
	}
	res, err := sess.Results()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s: %d warning(s)\n", res.Tool, len(res.Races))
	for _, r := range res.Races {
		fmt.Printf("  %s\n", r)
	}
	printDetails(os.Stdout, res.Detailed)
	// The daemon may have analyzed only a fraction of the offered
	// accesses (a sampled/adaptive session, or a force-sampled admission
	// under load); qualify the verdict.
	if res.DetectionProbability > 0 && res.DetectionProbability < 1 {
		fmt.Printf("  sampled analysis: detection probability %.3f\n", res.DetectionProbability)
	}
	fmt.Fprintf(os.Stderr, "racedetect: %d events analyzed remotely (session %s on %s)\n",
		res.Events, res.SessionID, addr)
	if len(res.Races) > 0 {
		return 1
	}
	return 0
}
