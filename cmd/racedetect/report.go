package main

import (
	"encoding/json"
	"io"
	"os"

	"fasttrack"
	"fasttrack/trace"
)

// runReportSchema versions the -json output. Consumers should check it
// before parsing; fields are only ever added within a schema version.
const runReportSchema = "fasttrack/run-report/v1"

// runReport is the machine-readable result of one racedetect invocation
// (the -json output): everything the human-readable output shows —
// races with both access sites when known, instrumentation statistics,
// pipeline health, and the final metrics snapshot — in one stable
// document.
type runReport struct {
	Schema string       `json:"schema"`
	Trace  string       `json:"trace"`
	Stream bool         `json:"stream,omitempty"`
	Tools  []toolReport `json:"tools"`
}

type toolReport struct {
	Tool   string          `json:"tool"`
	Events int64           `json:"events"` // events offered to the pipeline
	Races  []raceReport    `json:"races"`
	Stats  fasttrack.Stats `json:"stats"`
	Health healthReport    `json:"health"`
	// Metrics is the final registry snapshot for this tool's run; its
	// "rr.events.fed" counter equals Events.
	Metrics fasttrack.MetricsSnapshot `json:"metrics"`
}

type raceReport struct {
	Kind    string `json:"kind"`
	Var     uint64 `json:"var"`
	Tid     int32  `json:"tid"`
	PrevTid int32  `json:"prevTid"`
	Index   int    `json:"index"`
	// PrevIndex is -1 when the tool does not track access history.
	PrevIndex int `json:"prevIndex"`
	// Access/PrevAccess render both racing events when the trace is
	// memory-resident and the indices are known (batch mode).
	Access     string `json:"access,omitempty"`
	PrevAccess string `json:"prevAccess,omitempty"`
	// The remaining fields are the provenance evidence (-provenance
	// runs only): clock snapshots of both accesses, the failed
	// happens-before comparison, the racing threads' recent sync
	// operations, and the rendered explanation.
	AccessClock []uint64               `json:"accessClock,omitempty"`
	PrevClock   []uint64               `json:"prevClock,omitempty"`
	PrevEpoch   string                 `json:"prevEpoch,omitempty"`
	FailedCheck string                 `json:"failedCheck,omitempty"`
	SyncChain   []fasttrack.SyncRecord `json:"syncChain,omitempty"`
	Explanation string                 `json:"explanation,omitempty"`
}

type healthReport struct {
	Healthy              bool   `json:"healthy"`
	ToolDisabled         bool   `json:"toolDisabled,omitempty"`
	Panics               int64  `json:"panics,omitempty"`
	QuarantinedLocations int    `json:"quarantinedLocations,omitempty"`
	QuarantinedAccesses  int64  `json:"quarantinedAccesses,omitempty"`
	Violations           int64  `json:"violations,omitempty"`
	Repaired             int64  `json:"repaired,omitempty"`
	Dropped              int64  `json:"dropped,omitempty"`
	Synthesized          int64  `json:"synthesized,omitempty"`
	UnheldReleases       int64  `json:"unheldReleases,omitempty"`
	Error                string `json:"error,omitempty"`
}

// raceReports converts warnings, rendering both access sites from tr
// when available (tr may be nil in streaming mode).
func raceReports(races []fasttrack.Report, tr trace.Trace) []raceReport {
	out := make([]raceReport, 0, len(races))
	for _, r := range races {
		rr := raceReport{
			Kind:      r.Kind.String(),
			Var:       r.Var,
			Tid:       r.Tid,
			PrevTid:   r.PrevTid,
			Index:     r.Index,
			PrevIndex: r.PrevIndex,
		}
		if tr != nil {
			if r.Index >= 0 && r.Index < len(tr) {
				rr.Access = tr[r.Index].String()
			}
			if r.PrevIndex >= 0 && r.PrevIndex < len(tr) {
				rr.PrevAccess = tr[r.PrevIndex].String()
			}
		}
		out = append(out, rr)
	}
	return out
}

// raceReportsDetailed is raceReports plus the provenance evidence when
// the flight recorder produced it. DetailedTool guarantees details
// mirrors races one-to-one; a length mismatch (details nil, or a
// non-detailed tool) degrades to the plain reports.
func raceReportsDetailed(races []fasttrack.Report, tr trace.Trace, details []fasttrack.DetailedReport) []raceReport {
	out := raceReports(races, tr)
	if len(details) != len(out) {
		return out
	}
	for i, d := range details {
		out[i].AccessClock = d.AccessClock
		out[i].PrevClock = d.PrevClock
		out[i].PrevEpoch = d.PrevEpoch
		out[i].FailedCheck = d.FailedCheck
		out[i].SyncChain = d.SyncChain
		out[i].Explanation = d.Explanation
	}
	return out
}

func healthJSON(h fasttrack.Health) healthReport {
	hr := healthReport{
		Healthy:              h.Healthy,
		ToolDisabled:         h.ToolDisabled,
		Panics:               h.Panics,
		QuarantinedLocations: h.QuarantinedLocations,
		QuarantinedAccesses:  h.QuarantinedAccesses,
		Violations:           h.Violations,
		Repaired:             h.Repaired,
		Dropped:              h.Dropped,
		Synthesized:          h.Synthesized,
		UnheldReleases:       h.UnheldReleases,
	}
	if h.Err != nil {
		hr.Error = h.Err.Error()
	}
	return hr
}

// emitJSON writes the report to path ("" or "-" = stdout), indented and
// newline-terminated.
func emitJSON(rep *runReport, path string) error {
	var w io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
