package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"

	"fasttrack/instrument"
)

// runFrontend implements `racedetect run <pkg-dir>` and `racedetect
// test <pkg-dir>`: instrument the package's source with the
// fasttrack/instrument rewriter, build and execute it (capturing the
// event stream to a binary trace file via the runtime shim's trace
// sink), then analyze that trace by re-invoking this binary — so the
// run/test modes produce byte-identical reports to `racedetect
// <trace>` on the same stream, locally and with -server.
func runFrontend(mode string, args []string) {
	fs := flag.NewFlagSet("racedetect "+mode, flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: racedetect %s [flags] [package-dir]\n\n"+
			"Instruments the Go package in package-dir (default .), %s it, and\n"+
			"analyzes the recorded execution for data races. The package must be\n"+
			"self-contained and import only the standard library.\n\n", mode, map[string]string{
			"run": "runs", "test": "tests"}[mode])
		fs.PrintDefaults()
	}
	toolName := fs.String("tool", "FastTrack", "detector to analyze the recorded trace with")
	serverAddr := fs.String("server", "", "analyze on a racedetectd daemon at this address instead of locally")
	jsonOut := fs.Bool("json", false, "write a machine-readable run report to stdout")
	jsonFile := fs.String("json.file", "", "write the run report to this file instead of stdout")
	stats := fs.Bool("stats", false, "print instrumentation statistics with the analysis")
	traceOut := fs.String("o", "", "also save the captured trace to this path")
	keep := fs.Bool("keep", false, "keep (and print) the instrumented module directory")
	moduleDir := fs.String("module", "", "fasttrack module root for the generated replace directive (default: the module of the current directory)")
	fs.Parse(args)

	if fs.NArg() > 1 {
		fs.Usage()
		os.Exit(2)
	}
	pkgDir := "."
	if fs.NArg() == 1 {
		pkgDir = fs.Arg(0)
	}

	root := *moduleDir
	if root == "" {
		var err error
		if root, err = findFasttrackModule(); err != nil {
			fatal(fmt.Errorf("cannot locate the fasttrack module (run from inside it or pass -module): %w", err))
		}
	}

	workDir, err := os.MkdirTemp("", "ft-instrument-")
	if err != nil {
		fatal(err)
	}
	if *keep {
		fmt.Fprintln(os.Stderr, "instrumented module:", workDir)
	} else {
		defer os.RemoveAll(workDir)
	}

	res, err := instrument.Instrument(pkgDir, workDir, instrument.Options{
		ModuleDir: root,
		Test:      mode == "test",
	})
	if err != nil {
		fatal(err)
	}
	if *stats {
		s := res.Stats
		fmt.Fprintf(os.Stderr, "instrumented %d file(s): %d reads, %d writes, %d forks, %d chan ops, %d sync ops, %d skipped\n",
			s.Files, s.Reads, s.Writes, s.Forks, s.ChanOps, s.SyncOps, s.Skipped)
	}
	if mode == "run" && !res.Main {
		fatal(fmt.Errorf("racedetect run: %s is package %s, not a main package (use racedetect test)", pkgDir, res.Package))
	}

	tracePath := filepath.Join(workDir, "ft.trace")
	runEnv := append(os.Environ(),
		"GOFLAGS=-mod=mod", "GOWORK=off",
		"FASTTRACK_MODE=trace", "FASTTRACK_TRACE="+tracePath)

	var targetExit int
	if mode == "run" {
		bin := filepath.Join(workDir, "ft.bin")
		build := exec.Command("go", "build", "-o", bin, ".")
		build.Dir = workDir
		build.Env = runEnv
		if out, err := build.CombinedOutput(); err != nil {
			fatal(fmt.Errorf("building instrumented package:\n%s%w", out, err))
		}
		targetExit = runTarget(exec.Command(bin), workDir, runEnv)
	} else {
		targetExit = runTarget(exec.Command("go", "test", "-count=1", "."), workDir, runEnv)
	}
	if _, err := os.Stat(tracePath); err != nil {
		fatal(fmt.Errorf("the instrumented target produced no trace (it exited %d before the shim ran)", targetExit))
	}
	if *traceOut != "" {
		if err := copyFile(tracePath, *traceOut); err != nil {
			fatal(err)
		}
	}

	// Analyze by re-invoking racedetect on the captured trace: same
	// reporting machinery, same JSON, locally or against the daemon.
	analyzeArgs := []string{"-tool", *toolName}
	if *serverAddr != "" {
		analyzeArgs = append(analyzeArgs, "-server", *serverAddr)
	}
	if *jsonOut {
		analyzeArgs = append(analyzeArgs, "-json")
	}
	if *jsonFile != "" {
		analyzeArgs = append(analyzeArgs, "-json.file", *jsonFile)
	}
	if *stats {
		analyzeArgs = append(analyzeArgs, "-stats")
	}
	analyzeArgs = append(analyzeArgs, tracePath)
	analyze := exec.Command(os.Args[0], analyzeArgs...)
	analyze.Stdout = os.Stdout
	analyze.Stderr = os.Stderr
	analyzeExit := 0
	if err := analyze.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			analyzeExit = ee.ExitCode()
		} else {
			fatal(err)
		}
	}
	if targetExit != 0 {
		fmt.Fprintf(os.Stderr, "racedetect %s: target exited with status %d\n", mode, targetExit)
		if analyzeExit == 0 {
			analyzeExit = targetExit
		}
	}
	os.Exit(analyzeExit)
}

// runTarget executes the instrumented target with its output passed
// through, returning its exit status.
func runTarget(cmd *exec.Cmd, dir string, env []string) int {
	cmd.Dir = dir
	cmd.Env = env
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fatal(err)
	}
	return 0
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+fasttrack\s*$`)

// findFasttrackModule resolves the fasttrack checkout from the current
// directory's module (go env GOMOD).
func findFasttrackModule() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("no go.mod in the current directory's module")
	}
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	if !moduleLineRE.Match(data) {
		return "", fmt.Errorf("%s is not the fasttrack module", gomod)
	}
	return filepath.Dir(gomod), nil
}

func copyFile(src, dst string) error {
	data, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, data, 0o644)
}
