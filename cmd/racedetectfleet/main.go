// Command racedetectfleet serves one merged HTTP view of a racedetectd
// fleet: it polls every node's /readyz for health and steering state
// and fans read queries out to the nodes' own HTTP surfaces.
//
// Usage:
//
//	racedetectfleet -nodes a:7766=a:7767,b:7766=b:7767 [-addr 127.0.0.1:7768]
//	                [-probe 1s]
//
// Each -nodes entry is "dialaddr=httpaddr": the TCP ingestion address
// clients route sessions to, and the HTTP address this aggregator
// queries. The HTTP listener serves:
//
//	/fleet/nodes     per-node health: ready/draining, active vs max
//	                 sessions, soft-limit and shed pressure, refusal
//	                 backoffs, probe errors
//	/fleet/sessions  every node's /sessions merged into one list, each
//	                 entry attributed to its node
//	/fleet/metrics   every node's /metrics merged (counters/gauges
//	                 summed, histograms bucket-merged) plus the raw
//	                 per-node snapshots
//	/healthz         the aggregator's own liveness
//
// The aggregator is read-only and off the data path: clients stream
// directly to the nodes (racedetect -servers / client.DialFleet do
// their own routing), so restarting or losing the aggregator never
// affects a running analysis. A node that cannot be reached shows up
// with an error in the merged views instead of silently vanishing.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fasttrack/internal/fleet"
)

func main() {
	nodesSpec := flag.String("nodes", "", "comma-separated fleet nodes, each dialaddr=httpaddr (required)")
	addr := flag.String("addr", "127.0.0.1:7768", "HTTP listen address for the merged fleet views")
	probe := flag.Duration("probe", time.Second, "per-node /readyz probe interval")
	flag.Parse()

	logger := log.New(os.Stderr, "racedetectfleet: ", log.LstdFlags)
	if *nodesSpec == "" {
		logger.Fatal("missing -nodes (want a:7766=a:7767,b:7766=b:7767,...)")
	}
	nodes, err := fleet.ParseNodes(*nodesSpec)
	if err != nil {
		logger.Fatal(err)
	}
	agg, err := fleet.NewAggregator(nodes, *probe)
	if err != nil {
		logger.Fatal(err)
	}
	defer agg.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	// Ready line on stdout so supervisors (and CI) can wait for it; with
	// -addr :0 it carries the chosen port.
	fmt.Printf("racedetectfleet: http on %s (%d nodes)\n", ln.Addr(), len(nodes))
	os.Stdout.Sync()

	srv := &http.Server{Handler: agg.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	case err := <-serveErr:
		if err != nil && err != http.ErrServerClosed {
			logger.Fatal(err)
		}
	}
}
