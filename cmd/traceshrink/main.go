// Command traceshrink minimizes a trace while preserving a detector
// behaviour, via delta debugging: either "a tool warns" or "two tools
// disagree". It turns a multi-thousand-event failing workload into a
// handful-of-events witness for bug reports and precision triage.
//
// Usage:
//
//	traceshrink -warns FastTrack trace.txt          # keep: FastTrack warns
//	traceshrink -disagree FastTrack,Eraser trace.txt # keep: different warnings
//	traceshrink -warns Eraser -o min.trace trace.txt
//
// The minimized trace is written in the text format (stdout by default).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fasttrack"
	"fasttrack/internal/rr"
	"fasttrack/internal/shrink"
	"fasttrack/trace"
)

func main() {
	warns := flag.String("warns", "", "shrink while this tool still warns")
	disagree := flag.String("disagree", "", "shrink while these two comma-separated tools flag different variables")
	out := flag.String("o", "-", "output file (text format; default stdout)")
	flag.Parse()

	if (*warns == "") == (*disagree == "") {
		fmt.Fprintln(os.Stderr, "traceshrink: exactly one of -warns or -disagree is required")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: traceshrink [flags] trace-file")
		os.Exit(2)
	}

	tr, err := readTrace(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if err := tr.Validate(); err != nil {
		fatal(fmt.Errorf("input trace infeasible: %w", err))
	}

	mk := func(name string) func() rr.Tool {
		if _, err := fasttrack.NewTool(name, fasttrack.Hints{}); err != nil {
			fatal(err)
		}
		return func() rr.Tool {
			tool, _ := fasttrack.NewTool(name, fasttrack.Hints{})
			return tool
		}
	}

	var pred shrink.Predicate
	switch {
	case *warns != "":
		pred = shrink.Warns(mk(*warns))
	default:
		parts := strings.SplitN(*disagree, ",", 2)
		if len(parts) != 2 {
			fatal(fmt.Errorf("-disagree needs two comma-separated tool names"))
		}
		pred = shrink.Disagree(mk(strings.TrimSpace(parts[0])), mk(strings.TrimSpace(parts[1])))
	}

	if !pred(tr) {
		fatal(fmt.Errorf("input trace does not satisfy the predicate; nothing to shrink"))
	}
	min := shrink.Minimize(tr, pred)

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if err := trace.WriteText(w, min); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "traceshrink: %d events -> %d events\n", len(tr), len(min))
}

func readTrace(path string) (trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	isBinary, err := trace.Sniff(br)
	if err != nil {
		return nil, err
	}
	if isBinary {
		return trace.ReadBinary(br)
	}
	return trace.ReadText(br)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "traceshrink:", err)
	os.Exit(2)
}
