// Command minirun executes programs in the mini concurrent language (an
// executable version of the FastTrack paper's Figure 1 program model)
// under a race detector, exploring schedules with different seeds.
//
// Usage:
//
//	minirun prog.mini                        # one run, seed 1, FastTrack
//	minirun -seed 7 -tool Eraser prog.mini
//	minirun -seeds 100 prog.mini             # schedule exploration
//	minirun -seeds 100 -trace-out t.trace prog.mini
//
// With -seeds N the program runs under N different schedules and the
// summary shows, per distinct output, how often it occurred and how
// often the detector warned — the motivating demo for precise dynamic
// race detection: a racy program's lost update shows up in the output
// only on some schedules, while FastTrack flags every single one.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"fasttrack"
	"fasttrack/internal/mini"
	"fasttrack/internal/rr"
	"fasttrack/trace"
)

func main() {
	seed := flag.Int64("seed", 1, "scheduler seed for a single run")
	seeds := flag.Int("seeds", 0, "sample this many random schedules (seeds 0..N-1)")
	explore := flag.Int("explore", 0, "systematically enumerate up to this many schedules (exhaustive for small programs)")
	toolName := flag.String("tool", "FastTrack", "detector to run (empty string: none)")
	traceOut := flag.String("trace-out", "", "record the (last) run's trace to this file (text format)")
	maxSteps := flag.Int("max-steps", 1<<20, "scheduler step limit")
	format := flag.Bool("fmt", false, "pretty-print the program in canonical form and exit")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: minirun [flags] prog.mini")
		flag.PrintDefaults()
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := mini.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	if *format {
		fmt.Print(mini.Format(prog))
		return
	}

	mkTool := func() rr.Tool {
		if *toolName == "" {
			return nil
		}
		tool, err := fasttrack.NewTool(*toolName, fasttrack.Hints{})
		if err != nil {
			fatal(err)
		}
		return tool
	}

	if *explore > 0 {
		var mk func() rr.Tool
		if *toolName != "" {
			mk = func() rr.Tool { return mkTool() }
		}
		res := mini.Explore(prog, mk, *explore, *maxSteps)
		status := "bounded at"
		if res.Exhausted {
			status = "EXHAUSTIVE:"
		}
		fmt.Printf("%s %d schedules; detector warned on %d; runtime errors on %d\n",
			status, res.Schedules, res.Warned, res.Errors)
		keys := make([]string, 0, len(res.Outputs))
		for k := range res.Outputs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			tally := res.Outputs[k]
			fmt.Printf("  output %-32s x%-6d warned %d/%d\n", k, tally.Count, tally.Warned, tally.Count)
		}
		if res.Warned > 0 {
			os.Exit(1)
		}
		return
	}

	if *seeds <= 0 {
		res := mini.Run(prog, mini.Options{
			Seed: *seed, Tool: mkTool(), MaxSteps: *maxSteps,
			RecordTrace: *traceOut != "",
		})
		report(res)
		writeTrace(*traceOut, res.Trace)
		if res.Err != nil || len(res.Races) > 0 {
			os.Exit(1)
		}
		return
	}

	// Schedule exploration.
	type bucket struct {
		count  int
		warned int
		errs   int
	}
	buckets := map[string]*bucket{}
	warnedTotal, errTotal := 0, 0
	var lastTrace trace.Trace
	for s := int64(0); s < int64(*seeds); s++ {
		res := mini.Run(prog, mini.Options{
			Seed: s, Tool: mkTool(), MaxSteps: *maxSteps,
			RecordTrace: *traceOut != "",
		})
		key := outputKey(res)
		b := buckets[key]
		if b == nil {
			b = &bucket{}
			buckets[key] = b
		}
		b.count++
		if len(res.Races) > 0 {
			b.warned++
			warnedTotal++
		}
		if res.Err != nil {
			b.errs++
			errTotal++
		}
		lastTrace = res.Trace
	}
	fmt.Printf("%d schedules explored; detector warned on %d; runtime errors on %d\n",
		*seeds, warnedTotal, errTotal)
	keys := make([]string, 0, len(buckets))
	for k := range buckets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b := buckets[k]
		fmt.Printf("  output %-20s x%-5d warned %d/%d\n", k, b.count, b.warned, b.count)
	}
	writeTrace(*traceOut, lastTrace)
	if warnedTotal > 0 {
		os.Exit(1)
	}
}

func outputKey(res *mini.Result) string {
	if res.Err != nil {
		return "error:" + firstWord(res.Err.Error())
	}
	parts := make([]string, len(res.Output))
	for i, v := range res.Output {
		parts[i] = fmt.Sprint(v)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func firstWord(s string) string {
	// RuntimeError renders as "mini: runtime error ... (thread X): <msg>".
	if i := strings.Index(s, "): "); i >= 0 {
		s = s[i+3:]
	}
	s = strings.TrimSpace(s)
	if i := strings.IndexByte(s, '\n'); i > 0 {
		s = s[:i]
	}
	return s
}

func report(res *mini.Result) {
	for _, v := range res.Output {
		fmt.Println(v)
	}
	if res.Err != nil {
		fmt.Fprintln(os.Stderr, res.Err)
	}
	for _, r := range res.Races {
		fmt.Printf("RACE: %s\n", r)
	}
	fmt.Fprintf(os.Stderr, "(%d scheduler steps)\n", res.Steps)
}

func writeTrace(path string, tr trace.Trace) {
	if path == "" || tr == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}()
	if err := trace.WriteText(f, tr); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minirun:", err)
	os.Exit(2)
}
