package fasttrack

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"fasttrack/internal/chaos"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// batchSizes is the equivalence sweep: a degenerate batch, a size that
// cuts runs and sync events at awkward offsets, the service's typical
// frame size, and a batch larger than most test traces (one IngestBatch
// call for the whole stream).
var batchSizes = []int{1, 7, 64, 4096}

// replayBatch feeds tr through a fresh FastTrack monitor in IngestBatch
// chunks of size batch and returns warnings, stats, and health. Every
// chunk must be accepted in full — the monitor is never closed here.
func replayBatch(t *testing.T, tr trace.Trace, shards, batch int, opts ...MonitorOption) ([]Report, Stats, Health) {
	t.Helper()
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	m := NewMonitor(opts...)
	for i := 0; i < len(tr); i += batch {
		chunk := tr[i:min(i+batch, len(tr))]
		n, err := m.IngestBatch(chunk)
		if err != nil || n != len(chunk) {
			t.Fatalf("IngestBatch(%d events) = %d, %v on an open monitor", len(chunk), n, err)
		}
	}
	return m.Races(), m.Stats(), m.Health()
}

// replayEvents is the per-event baseline with the same return shape.
func replayEvents(tr trace.Trace, shards int, opts ...MonitorOption) ([]Report, Stats, Health) {
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	m := NewMonitor(opts...)
	for _, e := range tr {
		m.Ingest(e)
	}
	return m.Races(), m.Stats(), m.Health()
}

// assertBatchEquivalent checks IngestBatch against per-event Ingest on
// one trace at every batch size. On the serial path delivery order is
// identical, so the reports must match exactly, index for index. On the
// sharded path a batch's accesses are delivered stripe by stripe — a
// legal interleaving — so the (variable, kind) race multiset, stats,
// and health must match, but indices may not.
func assertBatchEquivalent(t *testing.T, label string, tr trace.Trace, shards int) {
	t.Helper()
	wantRaces, wantStats, wantHealth := replayEvents(tr, shards)
	wantStats.ShadowBytes = 0
	for _, batch := range batchSizes {
		got, gotStats, gotHealth := replayBatch(t, tr, shards, batch)
		name := fmt.Sprintf("%s/shards=%d/batch=%d", label, shards, batch)
		if shards <= 1 {
			if !reflect.DeepEqual(got, wantRaces) {
				t.Errorf("%s: races = %v, want %v", name, got, wantRaces)
			}
		} else if want := raceSet(wantRaces); !reflect.DeepEqual(raceSet(got), want) {
			t.Errorf("%s: race set = %v, want %v", name, raceSet(got), want)
		}
		gotStats.ShadowBytes = 0
		if gotStats != wantStats {
			t.Errorf("%s: stats diverge\n  batch:     %+v\n  per-event: %+v", name, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotHealth, wantHealth) {
			t.Errorf("%s: health diverge\n  batch:     %+v\n  per-event: %+v", name, gotHealth, wantHealth)
		}
	}
}

// TestIngestBatchEquivalenceSim: paper-shaped benchmark workloads and
// random feasible traces report identical results through IngestBatch
// and per-event Ingest, serial and sharded, at every batch size.
func TestIngestBatchEquivalenceSim(t *testing.T) {
	for _, b := range sim.Benchmarks()[:4] {
		tr := b.Trace(0.05)
		assertBatchEquivalent(t, b.Name, tr, 1)
		assertBatchEquivalent(t, b.Name, tr, 8)
	}
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 600
	cfg.Vars = 12
	for seed := int64(1); seed <= 4; seed++ {
		tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		label := fmt.Sprintf("random/seed=%d", seed)
		assertBatchEquivalent(t, label, tr, 1)
		assertBatchEquivalent(t, label, tr, 8)
	}
}

// TestIngestBatchEquivalenceChaos: equivalence must also hold on
// corrupted streams, where quarantine and unheld-release interception
// fire mid-batch.
func TestIngestBatchEquivalenceChaos(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(7)), sim.DefaultRandomConfig())
	for _, mode := range chaos.Modes() {
		raw := chaos.Mutate(base, mode, rand.New(rand.NewSource(3)))
		var tr trace.Trace
		sc := trace.NewScanner(bytes.NewReader(raw))
		for sc.Scan() {
			tr = append(tr, sc.Event())
		}
		if len(tr) == 0 {
			continue
		}
		assertBatchEquivalent(t, "chaos/"+mode.String(), tr, 1)
		assertBatchEquivalent(t, "chaos/"+mode.String(), tr, 8)
	}
}

// TestIngestBatchStraddlesSync: batches whose boundaries fall inside
// lock regions — and batches that contain several sync events — must
// order every access against the sync events exactly as the per-event
// path does. The trace is built so the race set is sensitive to that
// ordering: the lock protects some accesses and not others.
func TestIngestBatchStraddlesSync(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
	for k := 0; k < 40; k++ {
		x := uint64(10 + k%5)
		tr = append(tr,
			trace.Acq(1, 1), trace.Wr(1, x), trace.Rel(1, 1),
			trace.Wr(1, 100+uint64(k%3)), // unprotected
			trace.Acq(2, 1), trace.Rd(2, x), trace.Rel(2, 1),
			trace.Rd(2, 100+uint64(k%3)), // races with thread 1's write
		)
	}
	tr = append(tr, trace.JoinOf(0, 1), trace.JoinOf(0, 2))

	if races, _, _ := replayEvents(tr, 1); len(races) == 0 {
		t.Fatal("trace was built to race on the unprotected variables")
	}
	assertBatchEquivalent(t, "straddle", tr, 1)
	assertBatchEquivalent(t, "straddle", tr, 8)
}

// TestIngestBatchValidationRepair: the serial batch path runs the
// stream validator per event, so a repairing monitor behaves
// identically batched and unbatched on a corrupted stream.
func TestIngestBatchValidationRepair(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(11)), sim.DefaultRandomConfig())
	raw := chaos.Mutate(base, chaos.Modes()[0], rand.New(rand.NewSource(5)))
	var tr trace.Trace
	sc := trace.NewScanner(bytes.NewReader(raw))
	for sc.Scan() {
		tr = append(tr, sc.Event())
	}
	if len(tr) == 0 {
		t.Skip("mutation produced an undecodable trace")
	}
	wantRaces, wantStats, wantHealth := replayEvents(tr, 1, WithValidation(PolicyRepair))
	wantStats.ShadowBytes = 0
	for _, batch := range batchSizes {
		got, gotStats, gotHealth := replayBatch(t, tr, 1, batch, WithValidation(PolicyRepair))
		if !reflect.DeepEqual(got, wantRaces) {
			t.Errorf("batch=%d: races = %v, want %v", batch, got, wantRaces)
		}
		gotStats.ShadowBytes = 0
		if gotStats != wantStats {
			t.Errorf("batch=%d: stats diverge\n  batch:     %+v\n  per-event: %+v", batch, gotStats, wantStats)
		}
		if !reflect.DeepEqual(gotHealth, wantHealth) {
			t.Errorf("batch=%d: health diverge\n  batch:     %+v\n  per-event: %+v", batch, gotHealth, wantHealth)
		}
	}
}

// TestIngestBatchRaceHandler: the per-batch callback drain fires
// exactly once per reported warning, serial and sharded.
func TestIngestBatchRaceHandler(t *testing.T) {
	var tr trace.Trace
	tr = append(tr, trace.ForkOf(0, 1), trace.ForkOf(0, 2))
	for k := 0; k < 20; k++ {
		tr = append(tr, trace.Wr(1, uint64(40+k)), trace.Wr(2, uint64(40+k)))
	}
	for _, shards := range []int{1, 8} {
		var fired atomic.Int64
		opts := []MonitorOption{WithRaceHandler(func(Report) { fired.Add(1) })}
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		m := NewMonitor(opts...)
		for i := 0; i < len(tr); i += 7 {
			if _, err := m.IngestBatch(tr[i:min(i+7, len(tr))]); err != nil {
				t.Fatal(err)
			}
		}
		races := m.Races()
		if len(races) == 0 {
			t.Fatalf("shards=%d: no races on unsynchronized same-variable writes", shards)
		}
		if got := fired.Load(); got != int64(len(races)) {
			t.Errorf("shards=%d: handler fired %d times, %d races reported", shards, got, len(races))
		}
	}
}

// TestIngestBatchEmptyAndClosed: the degenerate cases of the batch
// contract — an empty batch is a no-op even on a closed monitor, and a
// whole batch offered after Close is rejected and counted.
func TestIngestBatchEmptyAndClosed(t *testing.T) {
	for _, shards := range []int{1, 4} {
		var opts []MonitorOption
		if shards > 1 {
			opts = append(opts, WithShards(shards))
		}
		m := NewMonitor(opts...)
		if n, err := m.IngestBatch(nil); n != 0 || err != nil {
			t.Errorf("shards=%d: IngestBatch(nil) = %d, %v", shards, n, err)
		}
		m.Fork(0, 1)
		m.Close()
		batch := trace.Trace{trace.Wr(1, 5), trace.Rd(1, 5), trace.Acq(1, 9), trace.Rel(1, 9)}
		n, err := m.IngestBatch(batch)
		if n != 0 || !errors.Is(err, ErrMonitorClosed) {
			t.Errorf("shards=%d: IngestBatch after Close = %d, %v", shards, n, err)
		}
		if got := m.Rejected(); got != int64(len(batch)) {
			t.Errorf("shards=%d: Rejected() = %d, want %d", shards, got, len(batch))
		}
		if n, err := m.IngestBatch(nil); n != 0 || err != nil {
			t.Errorf("shards=%d: IngestBatch(nil) after Close = %d, %v", shards, n, err)
		}
	}
}

// TestIngestBatchConcurrentClose: concurrent batching producers against
// a mid-stream Close. The partial-batch contract must hold exactly:
// every producer's accepted counts plus the monitor's rejected counter
// account for every event offered, with no double counting. Run with
// -race this also stresses the batch path's locking discipline.
func TestIngestBatchConcurrentClose(t *testing.T) {
	const producers = 4
	m := NewMonitor(WithShards(4))
	for f := 1; f <= producers; f++ {
		m.Fork(0, int32(f))
	}

	var (
		wg       sync.WaitGroup
		offered  atomic.Int64
		accepted atomic.Int64
	)
	start := make(chan struct{})
	for f := 1; f <= producers; f++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			// Disjoint variables per producer; a sync pair inside each
			// batch so Close can cut between a run and a barrier.
			base := uint64(tid) << 20
			batch := make(trace.Trace, 0, 22)
			for k := uint64(0); k < 10; k++ {
				batch = append(batch, trace.Wr(tid, base+k), trace.Rd(tid, base+k))
			}
			batch = append(batch, trace.Acq(tid, base+99), trace.Rel(tid, base+99))
			<-start
			for {
				n, err := m.IngestBatch(batch)
				offered.Add(int64(len(batch)))
				accepted.Add(int64(n))
				if err != nil {
					if !errors.Is(err, ErrMonitorClosed) {
						t.Errorf("producer %d: %v", tid, err)
					}
					if n >= len(batch) {
						t.Errorf("producer %d: error with full batch accepted (n=%d)", tid, n)
					}
					return
				}
				if n != len(batch) {
					t.Errorf("producer %d: nil error with short count %d", tid, n)
					return
				}
			}
		}(int32(f))
	}
	close(start)
	m.Close() // races with in-flight batches by design
	wg.Wait()

	if got, want := accepted.Load()+m.Rejected(), offered.Load(); got != want {
		t.Errorf("accepted %d + rejected %d = %d, want offered %d",
			accepted.Load(), m.Rejected(), got, want)
	}
}
