package fasttrack

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"fasttrack/internal/chaos"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// raceKey identifies a warning by what it is about rather than when it
// was detected: the sharded path may permute detection order across
// stripes, but the (variable, kind) set must be exactly the serial one.
type raceKey struct {
	Var  uint64
	Kind RaceKind
}

func raceSet(rs []Report) map[raceKey]int {
	set := make(map[raceKey]int, len(rs))
	for _, r := range rs {
		set[raceKey{r.Var, r.Kind}]++
	}
	return set
}

// replayShards feeds tr through a fresh FastTrack monitor with the given
// stripe count (1 = the serial path) and returns its warnings and stats.
func replayShards(tr trace.Trace, shards int) ([]Report, Stats) {
	opts := []MonitorOption{}
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	m := NewMonitor(opts...)
	for _, e := range tr {
		m.Ingest(e)
	}
	return m.Races(), m.Stats()
}

// assertEquivalent checks the sharded/serial correctness anchor: same
// race set, same event accounting, same rule-frequency counters. A
// single feeder delivers events in identical order on both paths, so
// the detector — a deterministic state machine — must agree exactly;
// only ShadowBytes may differ (the sharded layout has different
// per-variable overhead).
func assertEquivalent(t *testing.T, label string, tr trace.Trace, shards int) {
	t.Helper()
	serialRaces, serialStats := replayShards(tr, 1)
	shardRaces, shardStats := replayShards(tr, shards)

	if got, want := raceSet(shardRaces), raceSet(serialRaces); len(got) != len(want) {
		t.Errorf("%s: sharded found %d distinct races, serial %d", label, len(got), len(want))
	} else {
		for k, n := range want {
			if got[k] != n {
				t.Errorf("%s: race %v: sharded count %d, serial %d", label, k, got[k], n)
			}
		}
	}

	serialStats.ShadowBytes = 0
	shardStats.ShadowBytes = 0
	if shardStats != serialStats {
		t.Errorf("%s: stats diverge\n  sharded: %+v\n  serial:  %+v", label, shardStats, serialStats)
	}
}

// TestShardedSerialEquivalenceSim: the paper-shaped benchmark workloads
// and a spread of random feasible traces report identical results
// through WithShards(8) and the serial path.
func TestShardedSerialEquivalenceSim(t *testing.T) {
	for _, b := range sim.Benchmarks()[:4] {
		assertEquivalent(t, b.Name, b.Trace(0.05), 8)
	}
	cfg := sim.DefaultRandomConfig()
	cfg.Events = 600
	cfg.Vars = 12
	for seed := int64(1); seed <= 6; seed++ {
		tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
		assertEquivalent(t, fmt.Sprintf("random/seed=%d", seed), tr, 8)
	}
}

// TestShardedSerialEquivalenceChaos: equivalence must also hold on
// corrupted streams — the dispatcher's interception of unheld releases
// and its panic quarantine behave identically on both paths.
func TestShardedSerialEquivalenceChaos(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(7)), sim.DefaultRandomConfig())
	for _, mode := range chaos.Modes() {
		raw := chaos.Mutate(base, mode, rand.New(rand.NewSource(3)))
		var tr trace.Trace
		sc := trace.NewScanner(bytes.NewReader(raw))
		for sc.Scan() {
			tr = append(tr, sc.Event())
		}
		if len(tr) == 0 {
			continue
		}
		assertEquivalent(t, "chaos/"+mode.String(), tr, 8)
	}
}

// TestShardedConcurrentFeedersDisjoint: eight goroutines feeding
// accesses to disjoint variables through an eight-stripe monitor
// produce no warnings and exact access accounting. Run with -race this
// is also the stress test of the striped locking discipline.
func TestShardedConcurrentFeedersDisjoint(t *testing.T) {
	const feeders = 8
	const perFeeder = 2000

	m := NewMonitor(WithShards(feeders))
	for f := 1; f <= feeders; f++ {
		m.Fork(0, int32(f))
	}
	var wg sync.WaitGroup
	for f := 1; f <= feeders; f++ {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			base := uint64(tid) * 1 << 20
			for k := 0; k < perFeeder; k++ {
				addr := base + uint64(k%64)
				m.Write(tid, addr)
				m.Read(tid, addr)
			}
		}(int32(f))
	}
	wg.Wait()
	for f := 1; f <= feeders; f++ {
		m.Join(0, int32(f))
	}

	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms on disjoint variables: %v", races)
	}
	st := m.Stats()
	if want := int64(feeders * perFeeder); st.Reads != want || st.Writes != want {
		t.Errorf("accounting: reads=%d writes=%d, want %d each", st.Reads, st.Writes, want)
	}
	if got := st.ReadSameEpoch + st.ReadShared + st.ReadExclusive + st.ReadShare; got != st.Reads {
		t.Errorf("read rules sum to %d, Reads = %d", got, st.Reads)
	}
	if got := st.WriteSameEpoch + st.WriteExclusive + st.WriteShared; got != st.Writes {
		t.Errorf("write rules sum to %d, Writes = %d", got, st.Writes)
	}
}

// TestShardedRaceHandlerConcurrentFeeders: racing feeders through the
// striped path still reach the WithRaceHandler callback, exactly once
// per reported warning.
func TestShardedRaceHandlerConcurrentFeeders(t *testing.T) {
	var fired atomic.Int64
	m := NewMonitor(WithShards(4), WithRaceHandler(func(Report) { fired.Add(1) }))
	m.Fork(0, 1)
	m.Fork(0, 2)
	var wg sync.WaitGroup
	for _, tid := range []int32{1, 2} {
		wg.Add(1)
		go func(tid int32) {
			defer wg.Done()
			for k := 0; k < 500; k++ {
				m.Write(tid, 42) // same variable, no synchronization
				m.Write(tid, uint64(100+tid))
			}
		}(tid)
	}
	wg.Wait()
	m.Join(0, 1)
	m.Join(0, 2)

	races := m.Races()
	if len(races) == 0 {
		t.Fatal("no race reported for unsynchronized writes to one variable")
	}
	if got := fired.Load(); got != int64(len(races)) {
		t.Errorf("race handler fired %d times, %d races reported", got, len(races))
	}
}

// TestShardedThreadHandles: the Thread handle API rides the striped
// path transparently — concurrent children on disjoint data raise no
// alarms, and the fork/join edges still order parent accesses.
func TestShardedThreadHandles(t *testing.T) {
	m := NewMonitor(WithShards(8))
	main := m.MainThread()
	main.Write(1)
	children := make([]*Thread, 6)
	for i := range children {
		base := uint64(i+1) * 1 << 16
		children[i] = main.Go(func(child *Thread) {
			child.Read(1) // ordered by the fork
			for k := uint64(0); k < 300; k++ {
				child.Write(base + k%32)
				child.Read(base + k%32)
			}
		})
	}
	main.Join(children...)
	for i := range children {
		main.Read(uint64(i+1) * 1 << 16) // ordered by the joins
	}
	if races := m.Races(); len(races) != 0 {
		t.Errorf("false alarms: %v", races)
	}
}

// TestShardedConfigConflictsPanic: the documented incompatibilities are
// initialization-time panics, not silent misbehavior.
func TestShardedConfigConflictsPanic(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		fn()
	}
	mustPanic("validation", func() {
		NewMonitor(WithShards(4), WithValidation(PolicyRepair))
	})
	mustPanic("memory budget", func() {
		NewMonitor(WithShards(4), WithHints(Hints{MemoryBudget: 1 << 20}))
	})
	mustPanic("non-sharded tool", func() {
		tool, err := NewTool("Eraser", Hints{})
		if err != nil {
			t.Fatal(err)
		}
		NewMonitor(WithShards(4), WithTool(tool))
	})
}

// TestShardedResetClearsMetrics: Reset rebuilds the stripes, so the
// monitor.sharded.* registry view must stop reporting the previous
// run's work. The raw registry is inspected (not Monitor.Metrics, which
// republishes some of these gauges from the fresh stripes and would
// mask staleness in the others, notably maxInflight).
func TestShardedResetClearsMetrics(t *testing.T) {
	m := NewMonitor(WithShards(4))
	m.Fork(0, 1)
	for k := 0; k < 5000; k++ {
		// k%256 covers targets divisible by 64, so the sampled
		// inflight/maxInflight gauges are exercised too.
		m.Write(1, uint64(k%256))
	}
	m.Metrics() // publish stripedAccesses/contended
	snap := m.MetricsRegistry().Snapshot()
	if snap.Gauge("monitor.sharded.stripedAccesses") == 0 {
		t.Fatal("no striped work recorded before Reset")
	}
	if snap.Gauge("monitor.sharded.maxInflight") == 0 {
		t.Fatal("no sampled inflight peak recorded before Reset")
	}
	if err := m.Reset(); err != nil {
		t.Fatal(err)
	}
	snap = m.MetricsRegistry().Snapshot()
	for _, g := range []string{
		"monitor.sharded.stripedAccesses",
		"monitor.sharded.contended",
		"monitor.sharded.inflight",
		"monitor.sharded.maxInflight",
	} {
		if v := snap.Gauge(g); v != 0 {
			t.Errorf("after Reset, %s = %d, want 0", g, v)
		}
	}
}

// TestShardsDefaultSerial: WithShards(1) and no option at all are the
// same serial monitor.
func TestShardsDefaultSerial(t *testing.T) {
	if got := NewMonitor().Shards(); got != 1 {
		t.Errorf("default Shards() = %d", got)
	}
	if got := NewMonitor(WithShards(1)).Shards(); got != 1 {
		t.Errorf("WithShards(1).Shards() = %d", got)
	}
	if got := NewMonitor(WithShards(8)).Shards(); got != 8 {
		t.Errorf("WithShards(8).Shards() = %d", got)
	}
}
