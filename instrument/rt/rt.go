// Package rt is the runtime shim linked into programs instrumented by
// fasttrack/instrument: the rewriter injects calls to this package at
// every shared-memory access and synchronization operation, and the
// shim turns them into the detector's event stream.
//
// The shim owns three jobs:
//
//   - identity: goroutines are mapped to dense thread ids (the
//     instrumented go statement records the fork edge; goroutines that
//     appear without one — the testing framework's, for example — are
//     adopted with a synthetic fork from the main thread, which can
//     only mask races, never invent them); memory addresses, locks,
//     channels and WaitGroups are mapped to dense per-namespace ids;
//   - batching: each goroutine buffers its memory accesses locally and
//     coalesces adjacent same-variable duplicates, flushing to the
//     serialized sink before every synchronization event it emits (a
//     buffered access may drift relative to OTHER goroutines' accesses
//     — which is a legal reordering, accesses only synchronize through
//     sync events — but never across its own sync events);
//   - delivery: events go to one of three sinks selected by
//     FASTTRACK_MODE — "trace" (default; append to the binary trace
//     file named by FASTTRACK_TRACE for offline analysis — what
//     racedetect run drives), "local" (in-process fasttrack.Monitor;
//     report written at exit to FASTTRACK_REPORT or stderr), or
//     "server" (stream to the racedetectd daemon at FASTTRACK_SERVER
//     via the client package).
package rt

import (
	"fmt"
	"os"
	"reflect"
	"runtime"
	"sync"

	"fasttrack/trace"
)

// flushThreshold bounds a goroutine's local access buffer.
const flushThreshold = 256

// gstate is one goroutine's shim state. It is only touched by its own
// goroutine (except at Shutdown, which runs after user goroutines are
// expected to have finished; stragglers lose buffered accesses, not
// correctness).
type gstate struct {
	tid int32
	buf []trace.Event
}

var (
	initOnce sync.Once
	sink     eventSink

	mu      sync.Mutex // serializes sync events + flushes into the sink
	nextTid int32
	goids   sync.Map // goroutine id -> *gstate
	mainGid int64

	idMu    sync.Mutex
	varIDs  map[uintptr]uint64
	lockIDs map[uintptr]uint64
	volIDs  map[uintptr]uint64
	chanIDs map[uintptr]uint64
)

// goid returns the current goroutine's runtime id, parsed from the
// first stack line ("goroutine N [...]"). There is no public API for
// this; the parse is the standard fallback and costs about a
// microsecond, which the access-path batching amortizes.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	var id int64
	for _, c := range buf[len("goroutine "):n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// initShim sets up the sink from the environment on first use.
func initShim() {
	initOnce.Do(func() {
		varIDs = make(map[uintptr]uint64)
		lockIDs = make(map[uintptr]uint64)
		volIDs = make(map[uintptr]uint64)
		chanIDs = make(map[uintptr]uint64)
		var err error
		sink, err = newSink()
		if err != nil {
			fmt.Fprintln(os.Stderr, "fasttrack/rt:", err)
			os.Exit(2)
		}
		// The goroutine that initializes the shim is the main thread.
		mainGid = goid()
		g := &gstate{tid: 0}
		nextTid = 1
		goids.Store(mainGid, g)
	})
}

// Boot initializes the shim and returns the finalizer the instrumented
// main defers: it flushes every goroutine's buffer, closes the sink,
// and emits the report (mode-dependent). Boot is also called by the
// generated TestMain.
func Boot() func() {
	initShim()
	return Shutdown
}

// Shutdown flushes all buffered events and finalizes the sink. Safe to
// call once; events arriving afterwards are dropped.
func Shutdown() {
	initShim()
	mu.Lock()
	goids.Range(func(_, v any) bool {
		flushLocked(v.(*gstate))
		return true
	})
	s := sink
	sink = nil
	mu.Unlock()
	if s != nil {
		if err := s.finish(); err != nil {
			fmt.Fprintln(os.Stderr, "fasttrack/rt:", err)
			os.Exit(2)
		}
	}
}

// self returns the calling goroutine's state, adopting unknown
// goroutines with a synthetic fork edge from the main thread (see the
// package comment).
func self() *gstate {
	initShim()
	id := goid()
	if v, ok := goids.Load(id); ok {
		return v.(*gstate)
	}
	mu.Lock()
	defer mu.Unlock()
	if v, ok := goids.Load(id); ok {
		return v.(*gstate)
	}
	g := &gstate{tid: nextTid}
	nextTid++
	emitLocked(trace.ForkOf(0, g.tid))
	goids.Store(id, g)
	return g
}

// flushLocked drains g's access buffer into the sink. Caller holds mu.
func flushLocked(g *gstate) {
	if len(g.buf) == 0 {
		return
	}
	if sink != nil {
		sink.events(g.buf)
	}
	g.buf = g.buf[:0]
}

// emitLocked forwards one (synchronization) event. Caller holds mu.
func emitLocked(e trace.Event) {
	if sink != nil {
		sink.events([]trace.Event{e})
	}
}

// syncEvent flushes the goroutine's accesses and then emits e, as one
// serialized step so no other goroutine's sync event lands in between.
func (g *gstate) syncEvent(e trace.Event) {
	mu.Lock()
	flushLocked(g)
	emitLocked(e)
	mu.Unlock()
}

// access buffers one read/write event, coalescing an immediate
// duplicate (same kind, same variable: tight loops over one location).
func (g *gstate) access(e trace.Event) {
	if n := len(g.buf); n > 0 && g.buf[n-1].Kind == e.Kind && g.buf[n-1].Target == e.Target {
		return
	}
	g.buf = append(g.buf, e)
	if len(g.buf) >= flushThreshold {
		mu.Lock()
		flushLocked(g)
		mu.Unlock()
	}
}

// denseID assigns stable dense ids per namespace table.
func denseID(tab map[uintptr]uint64, p uintptr) uint64 {
	idMu.Lock()
	id, ok := tab[p]
	if !ok {
		id = uint64(len(tab))
		tab[p] = id
	}
	idMu.Unlock()
	return id
}

// ptrOf extracts the pointer identity of p (a pointer, channel, map,
// or other reference value).
func ptrOf(p any) uintptr { return reflect.ValueOf(p).Pointer() }

// R records a read of the location *p.
func R(p any) {
	g := self()
	g.access(trace.Rd(g.tid, denseID(varIDs, ptrOf(p))))
}

// W records a write of the location *p.
func W(p any) {
	g := self()
	g.access(trace.Wr(g.tid, denseID(varIDs, ptrOf(p))))
}

// Fork allocates a thread id for a goroutine about to start and records
// the fork edge. The rewriter evaluates Fork in the parent, before the
// go statement, and passes the result to Begin inside the child.
func Fork() int32 {
	g := self()
	mu.Lock()
	child := nextTid
	nextTid++
	flushLocked(g)
	emitLocked(trace.ForkOf(g.tid, child))
	mu.Unlock()
	return child
}

// Begin registers the calling goroutine under the thread id its parent
// forked for it.
func Begin(tid int32) {
	initShim()
	goids.Store(goid(), &gstate{tid: tid})
}

// End flushes the goroutine's remaining buffered accesses and retires
// its registration (the runtime may reuse goroutine ids).
func End() {
	g := self()
	mu.Lock()
	flushLocked(g)
	mu.Unlock()
	goids.Delete(goid())
}

// Acquire records that the caller acquired the mutex at p. The rewriter
// places it after the real Lock returns.
func Acquire(p any) {
	g := self()
	g.syncEvent(trace.Acq(g.tid, denseID(lockIDs, ptrOf(p))))
}

// Release records that the caller is releasing the mutex at p. The
// rewriter places it before the real Unlock.
func Release(p any) {
	g := self()
	g.syncEvent(trace.Rel(g.tid, denseID(lockIDs, ptrOf(p))))
}

// volID maps a pointer to a volatile id, with room for two volatiles
// per object (the RWMutex reader/writer pair, the WaitGroup latch).
func volID(p any, side uint64) uint64 {
	return denseID(volIDs, ptrOf(p))<<1 | side
}

// RAcquire records a read-lock acquisition of the RWMutex at p: the
// reader is ordered after the last write-unlock (modeled as a volatile
// read of the writer-release volatile). Placed after the real RLock.
func RAcquire(p any) {
	g := self()
	g.syncEvent(trace.VRd(g.tid, volID(p, 0)))
}

// RRelease records a read-unlock of the RWMutex at p: later write-locks
// are ordered after it (a volatile write of the reader-release
// volatile). Placed before the real RUnlock.
func RRelease(p any) {
	g := self()
	g.syncEvent(trace.VWr(g.tid, volID(p, 1)))
}

// AcquireRW records a write-lock acquisition of the RWMutex at p: mutual
// exclusion plus ordering after every reader's unlock. Placed after the
// real Lock.
func AcquireRW(p any) {
	g := self()
	l := denseID(lockIDs, ptrOf(p))
	mu.Lock()
	flushLocked(g)
	emitLocked(trace.Acq(g.tid, l))
	emitLocked(trace.VRd(g.tid, volID(p, 0)))
	emitLocked(trace.VRd(g.tid, volID(p, 1)))
	mu.Unlock()
}

// ReleaseRW records a write-unlock of the RWMutex at p. Placed before
// the real Unlock.
func ReleaseRW(p any) {
	g := self()
	l := denseID(lockIDs, ptrOf(p))
	mu.Lock()
	flushLocked(g)
	emitLocked(trace.VWr(g.tid, volID(p, 0)))
	emitLocked(trace.Rel(g.tid, l))
	mu.Unlock()
}

// WGDone records a WaitGroup count-down at p: a volatile write every
// later Wait is ordered after (the paper's latch model — exact for the
// final Wait). Placed before the real Done.
func WGDone(p any) {
	g := self()
	g.syncEvent(trace.VWr(g.tid, volID(p, 0)))
}

// WGWait records that a Wait on the WaitGroup at p returned. Placed
// after the real Wait.
func WGWait(p any) {
	g := self()
	g.syncEvent(trace.VRd(g.tid, volID(p, 0)))
}

// OnceDo records a sync.Once.Do completion as an acquire/release pair
// on a dedicated lock: every Do is ordered after every earlier Do,
// which covers the initializer-publication edge (and over-orders
// observers among themselves — conservative, never a false alarm).
// Placed after the real Do returns.
func OnceDo(p any) {
	g := self()
	l := denseID(lockIDs, ptrOf(p))
	mu.Lock()
	flushLocked(g)
	emitLocked(trace.Acq(g.tid, l))
	emitLocked(trace.Rel(g.tid, l))
	mu.Unlock()
}

// chanMeta extracts the identity and capacity of channel ch.
func chanMeta(ch any) (uint64, int32) {
	v := reflect.ValueOf(ch)
	return denseID(chanIDs, v.Pointer()), int32(v.Cap())
}

// ChanSend records a send on ch. The rewriter places it before the real
// send, so the k-th send event precedes the k-th receive event in the
// serialized stream (a blocked send has already recorded its event).
func ChanSend(ch any) {
	g := self()
	id, capacity := chanMeta(ch)
	g.syncEvent(trace.ChSend(g.tid, id, capacity))
}

// ChanRecv records a receive from ch. Placed after the real receive
// completes. Select-statement sends are also recorded post-operation
// (the rewriter cannot interpose before a select commits), which can
// order a chrecv before its chsend in the stream; the detector's
// accumulator fallback keeps that sound.
func ChanRecv(ch any) {
	g := self()
	id, capacity := chanMeta(ch)
	g.syncEvent(trace.ChRecv(g.tid, id, capacity))
}

// ChanClose records a close of ch. Placed before the real close.
func ChanClose(ch any) {
	g := self()
	id, capacity := chanMeta(ch)
	g.syncEvent(trace.ChClose(g.tid, id, capacity))
}
