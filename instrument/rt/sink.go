package rt

import (
	"encoding/json"
	"fmt"
	"os"

	"fasttrack"
	"fasttrack/client"
	"fasttrack/trace"
)

// eventSink is where the shim's serialized event stream goes. events is
// always called under the shim's global mutex, so implementations need
// no locking of their own.
type eventSink interface {
	events([]trace.Event)
	finish() error
}

// newSink picks the sink from the environment. FASTTRACK_MODE:
//
//	trace  (default) — append the binary trace to FASTTRACK_TRACE
//	local            — analyze in-process with a fasttrack.Monitor
//	server           — stream to the racedetectd at FASTTRACK_SERVER
func newSink() (eventSink, error) {
	mode := os.Getenv("FASTTRACK_MODE")
	if mode == "" {
		mode = "trace"
	}
	switch mode {
	case "trace":
		path := os.Getenv("FASTTRACK_TRACE")
		if path == "" {
			return nil, fmt.Errorf("FASTTRACK_MODE=trace needs FASTTRACK_TRACE=<path>")
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		return &traceSink{f: f, w: trace.NewWriter(f, trace.Binary)}, nil
	case "local":
		m := fasttrack.NewMonitor()
		return &localSink{m: m}, nil
	case "server":
		addr := os.Getenv("FASTTRACK_SERVER")
		if addr == "" {
			return nil, fmt.Errorf("FASTTRACK_MODE=server needs FASTTRACK_SERVER=<addr>")
		}
		s, err := client.Dial(addr, client.WithTool("FastTrack"))
		if err != nil {
			return nil, err
		}
		return &serverSink{s: s}, nil
	default:
		return nil, fmt.Errorf("unknown FASTTRACK_MODE %q", mode)
	}
}

// jsonReport is the race list the local and server sinks emit at exit,
// to FASTTRACK_REPORT (a path) or stderr.
type jsonReport struct {
	Tool   string     `json:"tool"`
	Events int64      `json:"events"`
	Races  []jsonRace `json:"races"`
}

type jsonRace struct {
	Var       uint64 `json:"var"`
	Kind      string `json:"kind"`
	Tid       int32  `json:"tid"`
	PrevTid   int32  `json:"prevTid"`
	Index     int    `json:"index"`
	PrevIndex int    `json:"prevIndex"`
}

func emitReport(tool string, events int64, races []fasttrack.Report) error {
	rep := jsonReport{Tool: tool, Events: events, Races: []jsonRace{}}
	for _, r := range races {
		rep.Races = append(rep.Races, jsonRace{
			Var: r.Var, Kind: r.Kind.String(), Tid: r.Tid, PrevTid: r.PrevTid,
			Index: r.Index, PrevIndex: r.PrevIndex,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path := os.Getenv("FASTTRACK_REPORT"); path != "" {
		return os.WriteFile(path, out, 0o644)
	}
	_, err = os.Stderr.Write(out)
	return err
}

// traceSink appends the serialized stream to a binary trace file; the
// analysis happens offline (racedetect <file>, locally or -server).
type traceSink struct {
	f *os.File
	w *trace.Writer
}

func (s *traceSink) events(evs []trace.Event) {
	for _, e := range evs {
		if err := s.w.Write(e); err != nil {
			fmt.Fprintln(os.Stderr, "fasttrack/rt: trace write:", err)
			os.Exit(2)
		}
	}
}

func (s *traceSink) finish() error {
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Close()
}

// localSink feeds an in-process Monitor and reports at exit.
type localSink struct {
	m *fasttrack.Monitor
	n int64
}

func (s *localSink) events(evs []trace.Event) {
	s.n += int64(len(evs))
	if _, err := s.m.IngestBatch(evs); err != nil {
		fmt.Fprintln(os.Stderr, "fasttrack/rt: monitor:", err)
		os.Exit(2)
	}
}

func (s *localSink) finish() error {
	if err := s.m.Close(); err != nil {
		return err
	}
	return emitReport("FastTrack", s.n, s.m.Races())
}

// serverSink streams to racedetectd via the client package and reports
// the daemon's race list at exit.
type serverSink struct {
	s *client.Session
}

func (s *serverSink) events(evs []trace.Event) {
	for _, e := range evs {
		if err := s.s.Write(e); err != nil {
			fmt.Fprintln(os.Stderr, "fasttrack/rt: server:", err)
			os.Exit(2)
		}
	}
}

func (s *serverSink) finish() error {
	if err := s.s.Flush(); err != nil {
		return err
	}
	res, err := s.s.Results()
	if err != nil {
		return err
	}
	if err := s.s.Close(); err != nil {
		return err
	}
	return emitReport(res.Tool, res.Events, res.Races)
}
