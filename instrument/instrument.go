// Package instrument is the Go-native front-end of the race detector:
// it rewrites the source of a target package so that every potentially
// shared memory access and every synchronization operation — go
// statements, sync.Mutex/RWMutex/WaitGroup/Once calls, and channel
// send/receive/close (including select and range) — reports to the
// fasttrack/instrument/rt runtime shim, then lays the rewritten
// package down as a self-contained module that builds against this
// repository via a replace directive.
//
// The rewriter is source-to-source (go/parser + go/types + go/printer)
// rather than a compiler plugin, mirroring how the paper's RoadRunner
// framework instruments JVM bytecode at load time: the program under
// test is modified, the detector is not special-cased in the runtime.
//
// Scope and limitations (checked or documented, never silently wrong
// in the racy direction unless listed):
//
//   - the target must be a single self-contained package importing
//     only the standard library;
//   - accesses through impure paths (index or receiver expressions
//     with function calls inside) are not recorded, and loop/switch
//     condition re-evaluations are recorded once at most — missed
//     accesses can mask races, never invent them;
//   - `go f(x)` with a named callee evaluates f and x in the child
//     goroutine instead of the parent (a `go func(){...}()` literal —
//     the common form — keeps exact semantics);
//   - sends inside select are recorded after the operation commits,
//     so a matching receive can appear first in the stream; the
//     detector's accumulator fallback keeps that sound;
//   - comments (including //go:* directives) are dropped from the
//     instrumented copy.
package instrument

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// shimImport is the import path of the runtime shim package.
const shimImport = "fasttrack/instrument/rt"

// shimName is the identifier the rewriter injects calls through; the
// leading underscores keep it out of the way of user identifiers.
const shimName = "__ft"

// Options configures an instrumentation run.
type Options struct {
	// ModuleDir is the root of the fasttrack module (the directory
	// holding its go.mod), used for the replace directive of the
	// generated module.
	ModuleDir string
	// Test includes _test.go files and generates a TestMain wrapper
	// that boots and shuts down the shim around m.Run.
	Test bool
}

// Stats counts what the rewriter did.
type Stats struct {
	Files   int // files rewritten
	Reads   int // read records injected
	Writes  int // write records injected
	Forks   int // go statements wrapped
	ChanOps int // channel send/recv/close records
	SyncOps int // mutex/waitgroup/once records
	Skipped int // accesses skipped (impure path, unaddressable, ...)
}

// Result describes the instrumented copy.
type Result struct {
	Dir     string // generated module directory
	Package string // package name of the target
	Main    bool   // the target is package main
	Stats   Stats
}

// Instrument rewrites the package in srcDir into a standalone module
// under outDir. outDir must exist and be empty or freshly created.
func Instrument(srcDir, outDir string, opts Options) (*Result, error) {
	fset := token.NewFileSet()
	names, err := sourceFiles(srcDir, opts.Test)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("instrument: no Go files in %s", srcDir)
	}

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(srcDir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("instrument: %w", err)
		}
		switch {
		case pkgName == "" || pkgName == f.Name.Name:
			pkgName = f.Name.Name
		case f.Name.Name == pkgName+"_test":
			return nil, fmt.Errorf("instrument: external test package %s not supported", f.Name.Name)
		default:
			return nil, fmt.Errorf("instrument: multiple packages in %s: %s and %s", srcDir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("instrument: type checking %s (only stdlib imports are supported): %w", srcDir, err)
	}

	rw := newRewriter(fset, info, pkg)
	rw.findEscaped(files)

	res := &Result{Dir: outDir, Package: pkgName, Main: pkgName == "main"}
	hasTestMain := false
	for i, f := range files {
		rw.rewriteFile(f, res.Main)
		if opts.Test && declaresTestMain(f) {
			hasTestMain = true
		}
		var b strings.Builder
		if err := format.Node(&b, fset, f); err != nil {
			return nil, fmt.Errorf("instrument: printing %s: %w", names[i], err)
		}
		if err := os.WriteFile(filepath.Join(outDir, names[i]), []byte(b.String()), 0o644); err != nil {
			return nil, err
		}
		res.Stats.Files++
	}
	res.Stats.Reads = rw.stats.Reads
	res.Stats.Writes = rw.stats.Writes
	res.Stats.Forks = rw.stats.Forks
	res.Stats.ChanOps = rw.stats.ChanOps
	res.Stats.SyncOps = rw.stats.SyncOps
	res.Stats.Skipped = rw.stats.Skipped

	if opts.Test {
		if hasTestMain {
			return nil, fmt.Errorf("instrument: %s defines TestMain; the instrumented TestMain wrapper cannot be generated", pkgName)
		}
		wrapper := fmt.Sprintf(testMainTemplate, pkgName, shimImport)
		if err := os.WriteFile(filepath.Join(outDir, "zz_ft_main_test.go"), []byte(wrapper), 0o644); err != nil {
			return nil, err
		}
	}

	if err := writeGoMod(outDir, opts.ModuleDir); err != nil {
		return nil, err
	}
	return res, nil
}

const testMainTemplate = `package %s

import (
	"os"
	"testing"

	__ft %q
)

func TestMain(m *testing.M) {
	fin := __ft.Boot()
	code := m.Run()
	fin()
	os.Exit(code)
}
`

// sourceFiles lists the .go files to instrument, sorted for
// deterministic output.
func sourceFiles(dir string, includeTests bool) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// declaresTestMain reports whether the file defines func TestMain.
func declaresTestMain(f *ast.File) bool {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "TestMain" {
			return true
		}
	}
	return false
}

var modulePathRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// writeGoMod lays down the generated module's go.mod, requiring the
// fasttrack module by its declared path and replacing it with the
// local checkout.
func writeGoMod(outDir, moduleDir string) error {
	if moduleDir == "" {
		return fmt.Errorf("instrument: Options.ModuleDir is required")
	}
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return fmt.Errorf("instrument: ModuleDir: %w", err)
	}
	m := modulePathRE.FindSubmatch(data)
	if m == nil {
		return fmt.Errorf("instrument: no module line in %s/go.mod", abs)
	}
	modPath := string(m[1])
	gomod := fmt.Sprintf("module ftinstrumented\n\ngo 1.22\n\nrequire %s v0.0.0\n\nreplace %s => %s\n",
		modPath, modPath, abs)
	return os.WriteFile(filepath.Join(outDir, "go.mod"), []byte(gomod), 0o644)
}
