package instrument

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file decides WHICH expressions get access records. The governing
// rule: a skipped access can only mask a race (miss a report), never
// fabricate one, so every heuristic here errs toward skipping when the
// expression cannot be re-evaluated safely and toward recording when
// the location might be shared.

// stripParens unwraps parenthesized expressions.
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// pure reports whether evaluating e (again) has no side effects, so the
// rewriter may duplicate it inside a shim call.
func pure(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return pure(e.X)
	case *ast.SelectorExpr:
		return pure(e.X)
	case *ast.IndexExpr:
		return pure(e.X) && pure(e.Index)
	case *ast.StarExpr:
		return pure(e.X)
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && pure(e.X)
	case *ast.BinaryExpr:
		return pure(e.X) && pure(e.Y)
	default:
		return false
	}
}

// addressable reports whether &e is legal Go.
func (r *rewriter) addressable(e ast.Expr) bool {
	switch e := stripParens(e).(type) {
	case *ast.Ident:
		_, ok := r.info.ObjectOf(e).(*types.Var)
		return ok
	case *ast.StarExpr:
		return true
	case *ast.IndexExpr:
		switch r.baseType(e.X).(type) {
		case *types.Slice:
			return true
		case *types.Pointer: // pointer to array
			return true
		case *types.Array:
			return r.addressable(e.X)
		default: // map, string, type parameter
			return false
		}
	case *ast.SelectorExpr:
		if sel, ok := r.info.Selections[e]; ok {
			if sel.Kind() != types.FieldVal {
				return false
			}
			if _, isPtr := r.baseType(e.X).(*types.Pointer); isPtr {
				return true
			}
			return r.addressable(e.X)
		}
		// Qualified identifier pkg.Var: addressable when it names a var.
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := r.info.ObjectOf(id).(*types.PkgName); isPkg {
				_, isVar := r.info.ObjectOf(e.Sel).(*types.Var)
				return isVar
			}
		}
		return false
	default:
		return false
	}
}

// baseType returns the underlying type of e, or nil.
func (r *rewriter) baseType(e ast.Expr) types.Type {
	if t, ok := r.info.Types[e]; ok && t.Type != nil {
		return t.Type.Underlying()
	}
	return nil
}

// shouldRecord reports whether the lvalue path e can refer to memory
// reachable from another goroutine: any path through a pointer, slice,
// map or channel is (the pointee may be shared no matter where the
// pointer lives), and a plain value path is when its root variable is
// package-level or escaped.
func (r *rewriter) shouldRecord(e ast.Expr) bool {
	for {
		switch x := stripParens(e).(type) {
		case *ast.Ident:
			v, ok := r.info.ObjectOf(x).(*types.Var)
			if !ok || v.Name() == "_" {
				return false
			}
			if v.Parent() == r.pkg.Scope() {
				return true
			}
			return r.escaped[v]
		case *ast.StarExpr:
			return true
		case *ast.IndexExpr:
			switch r.baseType(x.X).(type) {
			case *types.Array:
				e = x.X // value path continues through the array
			default:
				return true // slice/map/pointer: heap-reachable
			}
		case *ast.SelectorExpr:
			if _, isPtr := r.baseType(x.X).(*types.Pointer); isPtr {
				return true
			}
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := r.info.ObjectOf(id).(*types.PkgName); isPkg {
					return true // another package's variable
				}
			}
			e = x.X
		default:
			return false
		}
	}
}

// accessCall builds the __ft.R/__ft.W record for the lvalue e, or nil
// when e is not a recordable shared location. Map elements are not
// addressable, so a map access is recorded against the map variable
// itself (coarser, still sound: a racing map access IS a race on the
// map).
func (r *rewriter) accessCall(op string, e ast.Expr) ast.Stmt {
	e = stripParens(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
		return nil
	}
	if ix, ok := e.(*ast.IndexExpr); ok {
		if _, isMap := r.baseType(ix.X).(*types.Map); isMap {
			return r.accessCall(op, ix.X)
		}
	}
	if !r.shouldRecord(e) {
		return nil
	}
	if !pure(e) || !r.addressable(e) {
		r.stats.Skipped++
		return nil
	}
	if op == "R" {
		r.stats.Reads++
	} else {
		r.stats.Writes++
	}
	return r.shimStmt(op, addrOf(e))
}

// readRecords walks an expression and returns the read records for
// every shared location it loads (pre-statement) plus the records for
// receives embedded in it (post-statement: the receive completes when
// the statement runs). Function literal bodies are excluded — they run
// later, and rewriteFuncLits handles them.
func (r *rewriter) readRecords(e ast.Expr) (pre, post []ast.Stmt) {
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := stripParens(e).(type) {
		case nil, *ast.BasicLit, *ast.FuncLit:
		case *ast.Ident, *ast.StarExpr, *ast.SelectorExpr, *ast.IndexExpr:
			if c := r.accessCall("R", e); c != nil {
				pre = append(pre, c)
			}
			// Indices and non-recorded bases may contain further reads.
			switch x := e.(type) {
			case *ast.StarExpr:
				walk(x.X)
			case *ast.IndexExpr:
				walk(x.Index)
				if _, ok := x.X.(*ast.Ident); !ok {
					walk(x.X)
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				post = append(post, r.shimStmt("ChanRecv", e.X))
				r.stats.ChanOps++
				walk(e.X)
				break
			}
			if e.Op == token.AND {
				break // taking an address reads nothing
			}
			walk(e.X)
		case *ast.BinaryExpr:
			walk(e.X)
			walk(e.Y)
		case *ast.CallExpr:
			for _, a := range e.Args {
				walk(a)
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				walk(el)
			}
		case *ast.KeyValueExpr:
			walk(e.Key)
			walk(e.Value)
		case *ast.SliceExpr:
			walk(e.X)
			walk(e.Low)
			walk(e.High)
			walk(e.Max)
		case *ast.TypeAssertExpr:
			walk(e.X)
		}
	}
	walk(e)
	return pre, post
}

// indexReads returns the read records for index/key expressions inside
// a write target (writing a[i] reads i; writing m[k] reads k).
func (r *rewriter) indexReads(l ast.Expr) []ast.Stmt {
	var out []ast.Stmt
	for {
		switch x := stripParens(l).(type) {
		case *ast.IndexExpr:
			pre, _ := r.readRecords(x.Index)
			out = append(out, pre...)
			l = x.X
		case *ast.SelectorExpr:
			l = x.X
		case *ast.StarExpr:
			l = x.X
		default:
			return out
		}
	}
}

// isBuiltin reports whether id resolves to a Go builtin (close, len...).
func (r *rewriter) isBuiltin(id *ast.Ident) bool {
	_, ok := r.info.ObjectOf(id).(*types.Builtin)
	return ok
}

// syncOp recognizes method calls on the sync package's types and
// returns an internal op name plus a pointer expression for the
// receiver, or "" when the call is not one the shim models (then the
// generic call path records its argument reads).
func (r *rewriter) syncOp(call *ast.CallExpr) (string, ast.Expr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", nil
	}
	selection, ok := r.info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", nil
	}
	t := selection.Recv()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "sync" {
		return "", nil
	}
	var op string
	switch named.Obj().Name() + "." + sel.Sel.Name {
	case "Mutex.Lock":
		op = "Lock"
	case "Mutex.Unlock":
		op = "Unlock"
	case "RWMutex.Lock":
		op = "RWLock"
	case "RWMutex.Unlock":
		op = "RWUnlock"
	case "RWMutex.RLock":
		op = "RLock"
	case "RWMutex.RUnlock":
		op = "RUnlock"
	case "WaitGroup.Done":
		op = "WGDone"
	case "WaitGroup.Wait":
		op = "WGWait"
	case "Once.Do":
		op = "OnceDo"
	default:
		return "", nil
	}
	if !pure(sel.X) {
		r.stats.Skipped++
		return "", nil
	}
	recv := ast.Expr(sel.X)
	if _, isPtr := r.baseType(sel.X).(*types.Pointer); !isPtr {
		recv = addrOf(sel.X)
	}
	return op, recv
}

// syncRecords maps a recognized sync op to its shim records. Acquire
// sides are recorded after the real operation (the edge exists once the
// lock is held), release sides before it (the edge must be published
// before another thread can acquire).
func (r *rewriter) syncRecords(op string, recv ast.Expr) (pre, post []ast.Stmt) {
	r.stats.SyncOps++
	switch op {
	case "Lock":
		post = []ast.Stmt{r.shimStmt("Acquire", recv)}
	case "Unlock":
		pre = []ast.Stmt{r.shimStmt("Release", recv)}
	case "RWLock":
		post = []ast.Stmt{r.shimStmt("AcquireRW", recv)}
	case "RWUnlock":
		pre = []ast.Stmt{r.shimStmt("ReleaseRW", recv)}
	case "RLock":
		post = []ast.Stmt{r.shimStmt("RAcquire", recv)}
	case "RUnlock":
		pre = []ast.Stmt{r.shimStmt("RRelease", recv)}
	case "WGDone":
		pre = []ast.Stmt{r.shimStmt("WGDone", recv)}
	case "WGWait":
		post = []ast.Stmt{r.shimStmt("WGWait", recv)}
	case "OnceDo":
		post = []ast.Stmt{r.shimStmt("OnceDo", recv)}
	}
	return pre, post
}
