package instrument

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// rewriter holds the per-package rewrite state.
type rewriter struct {
	fset    *token.FileSet
	info    *types.Info
	pkg     *types.Package
	escaped map[*types.Var]bool // locals whose address may be shared
	visited map[*ast.BlockStmt]bool
	used    bool // current file references the shim
	stats   Stats
}

func newRewriter(fset *token.FileSet, info *types.Info, pkg *types.Package) *rewriter {
	return &rewriter{
		fset:    fset,
		info:    info,
		pkg:     pkg,
		escaped: map[*types.Var]bool{},
		visited: map[*ast.BlockStmt]bool{},
	}
}

// findEscaped marks local variables that can be reached from another
// goroutine: those whose address is taken and those captured by a
// function literal. Package-level variables are always instrumented and
// need no marking. The approximation errs toward instrumenting.
func (r *rewriter) findEscaped(files []*ast.File) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if v := r.rootVar(n.X); v != nil {
						r.escaped[v] = true
					}
				}
			case *ast.FuncLit:
				// Any variable used inside the literal but declared
				// outside it is captured and may be shared with the
				// goroutine the literal runs on.
				lit := n
				ast.Inspect(lit.Body, func(m ast.Node) bool {
					id, ok := m.(*ast.Ident)
					if !ok {
						return true
					}
					obj, ok := r.info.Uses[id].(*types.Var)
					if ok && !obj.IsField() && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
						r.escaped[obj] = true
					}
					return true
				})
			}
			return true
		})
	}
}

// rootVar walks a value path (selectors and parens over a plain
// identifier) to its root variable, or nil if the path is anything
// more exotic.
func (r *rewriter) rootVar(e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, _ := r.info.ObjectOf(x).(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// shimCall builds __ft.Name(args...).
func (r *rewriter) shimCall(name string, args ...ast.Expr) *ast.CallExpr {
	r.used = true
	return &ast.CallExpr{
		Fun:  &ast.SelectorExpr{X: ast.NewIdent(shimName), Sel: ast.NewIdent(name)},
		Args: args,
	}
}

func (r *rewriter) shimStmt(name string, args ...ast.Expr) ast.Stmt {
	return &ast.ExprStmt{X: r.shimCall(name, args...)}
}

// addrOf returns &e with positions stripped so the printer lays the
// synthesized call out on its own line.
func addrOf(e ast.Expr) ast.Expr {
	return &ast.UnaryExpr{Op: token.AND, X: clearPos(e)}
}

// clearPos deep-copies nothing — it reuses the expression node — but
// synthesized statements around original-position expressions confuse
// go/printer into emitting stale newlines. Rather than deep-copying the
// tree, positions are left in place; go/format tolerates this for the
// shapes the rewriter emits. The function exists as the single place to
// change if a printer edge case surfaces.
func clearPos(e ast.Expr) ast.Expr { return e }

// rewriteFile instruments every function body in f and injects the shim
// import (only when used) and the main-function boot hook.
func (r *rewriter) rewriteFile(f *ast.File, isMain bool) {
	r.used = false
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if ok && fd.Body != nil {
			r.rewriteBlock(fd.Body)
		}
	}
	if isMain {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == "main" && fd.Body != nil {
				boot := &ast.DeferStmt{Call: &ast.CallExpr{Fun: r.shimCall("Boot")}}
				fd.Body.List = append([]ast.Stmt{boot}, fd.Body.List...)
			}
		}
	}
	if r.used {
		spec := &ast.ImportSpec{
			Name: ast.NewIdent(shimName),
			Path: &ast.BasicLit{Kind: token.STRING, Value: strconv.Quote(shimImport)},
		}
		f.Decls = append([]ast.Decl{&ast.GenDecl{Tok: token.IMPORT, Specs: []ast.Spec{spec}}}, f.Decls...)
		f.Imports = append(f.Imports, spec)
	}
}

// rewriteBlock replaces the block's statement list with the
// instrumented version. Each block is rewritten at most once (function
// literals are reached both through their enclosing statement and
// directly).
func (r *rewriter) rewriteBlock(b *ast.BlockStmt) {
	if b == nil || r.visited[b] {
		return
	}
	r.visited[b] = true
	var out []ast.Stmt
	for _, s := range b.List {
		r.rewriteStmt(s, &out)
	}
	b.List = out
}

// rewriteFuncLits instruments the bodies of all function literals
// inside an expression (or statement) subtree.
func (r *rewriter) rewriteFuncLits(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			r.rewriteBlock(lit.Body)
		}
		return true
	})
}

// rewriteStmt appends the instrumented form of s to out: zero or more
// injected records, the (possibly modified) statement, and zero or more
// post-records.
func (r *rewriter) rewriteStmt(s ast.Stmt, out *[]ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		r.rewriteAssign(s, out)

	case *ast.IncDecStmt:
		r.rewriteFuncLits(s.X)
		if c := r.accessCall("R", s.X); c != nil {
			*out = append(*out, c)
		}
		if c := r.accessCall("W", s.X); c != nil {
			*out = append(*out, c)
		}
		*out = append(*out, s)

	case *ast.SendStmt:
		r.rewriteFuncLits(s)
		pre, post := r.readRecords(s.Chan)
		p2, post2 := r.readRecords(s.Value)
		pre = append(pre, p2...)
		*out = append(*out, pre...)
		*out = append(*out, r.shimStmt("ChanSend", s.Chan))
		r.stats.ChanOps++
		*out = append(*out, s)
		*out = append(*out, post...)
		*out = append(*out, post2...)

	case *ast.ExprStmt:
		r.rewriteExprStmt(s, out)

	case *ast.GoStmt:
		r.rewriteGo(s, out)

	case *ast.DeferStmt:
		r.rewriteDefer(s, out)

	case *ast.ReturnStmt:
		var pre, post []ast.Stmt
		for _, e := range s.Results {
			r.rewriteFuncLits(e)
			p, q := r.readRecords(e)
			pre = append(pre, p...)
			post = append(post, q...)
		}
		// A receive in a return expression completes before the return
		// executes; its record must land before the statement too.
		*out = append(*out, pre...)
		*out = append(*out, post...)
		*out = append(*out, s)

	case *ast.IfStmt:
		if s.Init == nil {
			r.rewriteFuncLits(s.Cond)
			pre, post := r.readRecords(s.Cond)
			*out = append(*out, pre...)
			_ = post // a receive in a condition: record skipped (would mis-order)
			if len(post) > 0 {
				r.stats.Skipped++
			}
		}
		r.rewriteBlock(s.Body)
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			r.rewriteBlock(e)
		case *ast.IfStmt:
			var tail []ast.Stmt
			r.rewriteStmt(e, &tail)
			// An else-if whose condition needs records becomes
			// else { records...; if ... }.
			if len(tail) == 1 {
				s.Else = tail[0]
			} else {
				s.Else = &ast.BlockStmt{List: tail}
			}
		}
		*out = append(*out, s)

	case *ast.ForStmt:
		// Conditions and post statements re-evaluate each iteration;
		// injecting one record before the loop would under-count, and
		// restructuring the loop is not worth it. Bodies are covered.
		r.rewriteBlock(s.Body)
		*out = append(*out, s)

	case *ast.RangeStmt:
		r.rewriteRange(s, out)

	case *ast.SelectStmt:
		r.rewriteSelect(s)
		*out = append(*out, s)

	case *ast.SwitchStmt:
		if s.Init == nil && s.Tag != nil {
			r.rewriteFuncLits(s.Tag)
			pre, _ := r.readRecords(s.Tag)
			*out = append(*out, pre...)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				var body []ast.Stmt
				for _, bs := range cc.Body {
					r.rewriteStmt(bs, &body)
				}
				cc.Body = body
			}
		}
		*out = append(*out, s)

	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				var body []ast.Stmt
				for _, bs := range cc.Body {
					r.rewriteStmt(bs, &body)
				}
				cc.Body = body
			}
		}
		*out = append(*out, s)

	case *ast.BlockStmt:
		r.rewriteBlock(s)
		*out = append(*out, s)

	case *ast.LabeledStmt:
		// The label must stay attached to its statement, so only
		// statements that need no pre-records can be instrumented.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt:
			r.rewriteBlock(inner.Body)
		case *ast.RangeStmt:
			r.rewriteBlock(inner.Body)
		case *ast.BlockStmt:
			r.rewriteBlock(inner)
		case *ast.SelectStmt:
			r.rewriteSelect(inner)
		}
		*out = append(*out, s)

	default:
		r.rewriteFuncLits(s)
		*out = append(*out, s)
	}
}

// rewriteAssign handles assignments, including the `v := <-ch` and
// `v, ok := <-ch` receive forms.
func (r *rewriter) rewriteAssign(s *ast.AssignStmt, out *[]ast.Stmt) {
	r.rewriteFuncLits(s)

	// Receive assignment: record the receive after the statement, then
	// the writes (the written values are what the receive published).
	if len(s.Rhs) == 1 {
		if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			pre, _ := r.readRecords(u.X)
			*out = append(*out, pre...)
			*out = append(*out, s)
			*out = append(*out, r.shimStmt("ChanRecv", u.X))
			r.stats.ChanOps++
			for _, l := range s.Lhs {
				if c := r.accessCall("W", l); c != nil {
					*out = append(*out, c)
				}
			}
			return
		}
	}

	var pre, post []ast.Stmt
	for _, e := range s.Rhs {
		p, q := r.readRecords(e)
		pre = append(pre, p...)
		post = append(post, q...)
	}
	// Compound assignment (x += v) also reads the target; the written
	// location's sub-expressions (indices) are read in every form.
	for _, l := range s.Lhs {
		if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
			p, _ := r.readRecords(l)
			pre = append(pre, p...)
		} else {
			pre = append(pre, r.indexReads(l)...)
		}
	}
	var writes []ast.Stmt
	for _, l := range s.Lhs {
		if c := r.accessCall("W", l); c != nil {
			writes = append(writes, c)
		}
	}
	*out = append(*out, pre...)
	*out = append(*out, post...)
	if s.Tok == token.DEFINE {
		// Writes to := targets refer to the new variables; they are
		// only recordable after the declaration.
		*out = append(*out, s)
		*out = append(*out, writes...)
	} else {
		*out = append(*out, writes...)
		*out = append(*out, s)
	}
}

// rewriteExprStmt handles expression statements: bare receives,
// close(), recognized sync-package calls, and ordinary calls.
func (r *rewriter) rewriteExprStmt(s *ast.ExprStmt, out *[]ast.Stmt) {
	r.rewriteFuncLits(s)

	if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
		pre, _ := r.readRecords(u.X)
		*out = append(*out, pre...)
		*out = append(*out, s)
		*out = append(*out, r.shimStmt("ChanRecv", u.X))
		r.stats.ChanOps++
		return
	}

	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		*out = append(*out, s)
		return
	}

	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && r.isBuiltin(id) && len(call.Args) == 1 {
		pre, _ := r.readRecords(call.Args[0])
		*out = append(*out, pre...)
		*out = append(*out, r.shimStmt("ChanClose", call.Args[0]))
		r.stats.ChanOps++
		*out = append(*out, s)
		return
	}

	if op, recv := r.syncOp(call); op != "" {
		pre, post := r.syncRecords(op, recv)
		*out = append(*out, pre...)
		*out = append(*out, s)
		*out = append(*out, post...)
		return
	}

	var pre []ast.Stmt
	for _, a := range call.Args {
		p, _ := r.readRecords(a)
		pre = append(pre, p...)
	}
	*out = append(*out, pre...)
	*out = append(*out, s)
}

// rewriteGo turns a go statement into a forked, registered goroutine.
//
//	go func(...){ body }(args)   becomes
//	go func(__ft_parent int32, ...) { __ft.Begin(__ft_parent); defer __ft.End(); body }(__ft.Fork(), args)
//
// preserving the parent-side evaluation of the arguments. A named
// callee is wrapped in a literal instead, moving its evaluation into
// the child (documented limitation).
func (r *rewriter) rewriteGo(s *ast.GoStmt, out *[]ast.Stmt) {
	r.stats.Forks++
	parent := ast.NewIdent(shimName + "_parent")
	prologue := []ast.Stmt{
		r.shimStmt("Begin", ast.NewIdent(parent.Name)),
		&ast.DeferStmt{Call: r.shimCall("End")},
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		r.rewriteBlock(lit.Body)
		field := &ast.Field{Names: []*ast.Ident{parent}, Type: ast.NewIdent("int32")}
		lit.Type.Params.List = append([]*ast.Field{field}, lit.Type.Params.List...)
		lit.Body.List = append(prologue, lit.Body.List...)
		s.Call.Args = append([]ast.Expr{r.shimCall("Fork")}, s.Call.Args...)
		*out = append(*out, s)
		return
	}
	r.rewriteFuncLits(s.Call)
	wrapper := &ast.FuncLit{
		Type: &ast.FuncType{Params: &ast.FieldList{List: []*ast.Field{
			{Names: []*ast.Ident{parent}, Type: ast.NewIdent("int32")},
		}}},
		Body: &ast.BlockStmt{List: append(prologue, &ast.ExprStmt{X: s.Call})},
	}
	r.visited[wrapper.Body] = true
	s.Call = &ast.CallExpr{Fun: wrapper, Args: []ast.Expr{r.shimCall("Fork")}}
	*out = append(*out, s)
}

// rewriteDefer wraps deferred sync operations so their records are
// emitted when the defer runs, not when it is declared.
func (r *rewriter) rewriteDefer(s *ast.DeferStmt, out *[]ast.Stmt) {
	r.rewriteFuncLits(s)
	if op, recv := r.syncOp(s.Call); op != "" {
		pre, post := r.syncRecords(op, recv)
		body := append(append(pre, &ast.ExprStmt{X: s.Call}), post...)
		wrapper := &ast.FuncLit{
			Type: &ast.FuncType{Params: &ast.FieldList{}},
			Body: &ast.BlockStmt{List: body},
		}
		r.visited[wrapper.Body] = true
		s.Call = &ast.CallExpr{Fun: wrapper}
	}
	*out = append(*out, s)
}

// rewriteRange instruments range bodies; ranging over a channel records
// a receive (and the loop-variable write) at the top of each iteration.
func (r *rewriter) rewriteRange(s *ast.RangeStmt, out *[]ast.Stmt) {
	r.rewriteBlock(s.Body)
	if t, ok := r.info.Types[s.X]; ok {
		if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
			var top []ast.Stmt
			top = append(top, r.shimStmt("ChanRecv", s.X))
			r.stats.ChanOps++
			if s.Key != nil {
				if c := r.accessCall("W", s.Key); c != nil {
					top = append(top, c)
				}
			}
			s.Body.List = append(top, s.Body.List...)
		}
	}
	pre, _ := r.readRecords(s.X)
	*out = append(*out, pre...)
	*out = append(*out, s)
}

// rewriteSelect records the committed communication at the top of each
// clause body. For receives this is the natural post-op position; for
// sends it is after the operation (the send already happened when the
// body runs) — see the package comment.
func (r *rewriter) rewriteSelect(s *ast.SelectStmt) {
	for _, c := range s.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok {
			continue
		}
		var top []ast.Stmt
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			top = append(top, r.shimStmt("ChanSend", comm.Chan))
			r.stats.ChanOps++
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				top = append(top, r.shimStmt("ChanRecv", u.X))
				r.stats.ChanOps++
			}
		case *ast.AssignStmt:
			if len(comm.Rhs) == 1 {
				if u, ok := comm.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					top = append(top, r.shimStmt("ChanRecv", u.X))
					r.stats.ChanOps++
					for _, l := range comm.Lhs {
						if c := r.accessCall("W", l); c != nil {
							top = append(top, c)
						}
					}
				}
			}
		}
		var body []ast.Stmt
		for _, bs := range cc.Body {
			r.rewriteStmt(bs, &body)
		}
		cc.Body = append(top, body...)
	}
}
