package instrument

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// racyProgram has one race (the read of y concurrent with the child's
// write) and one channel-synchronized pair (x, published over the
// unbuffered done channel) that must NOT be reported.
const racyProgram = `package main

import "fmt"

var x, y int

func main() {
	done := make(chan bool)
	go func() {
		x = 1
		y = 1
		done <- true
	}()
	before := y
	<-done
	after := x
	fmt.Sprintln(before, after)
}
`

// cleanProgram synchronizes everything with a mutex and a WaitGroup;
// zero races expected.
const cleanProgram = `package main

import (
	"fmt"
	"sync"
)

var c int

func main() {
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			defer wg.Done()
			mu.Lock()
			c++
			mu.Unlock()
		}()
	}
	wg.Wait()
	fmt.Sprintln(c)
}
`

// chanProgram exercises buffered-channel slack: with capacity 2 the
// second send does not wait for the first receive, so the receiver-side
// write is unordered with the sender's read — one race.
const chanProgram = `package main

import "fmt"

var v int

func main() {
	ch := make(chan int, 2)
	done := make(chan bool)
	go func() {
		v = 1
		<-ch
		<-ch
		done <- true
	}()
	ch <- 1
	ch <- 2
	r := v
	<-done
	fmt.Sprintln(r)
}
`

func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(dir)
}

func instrumentSource(t *testing.T, src string) (*Result, string) {
	t.Helper()
	srcDir := t.TempDir()
	outDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(srcDir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Instrument(srcDir, outDir, Options{ModuleDir: repoRoot(t)})
	if err != nil {
		t.Fatalf("Instrument: %v", err)
	}
	return res, outDir
}

func TestRewriteInjectsShimCalls(t *testing.T) {
	_, outDir := instrumentSource(t, racyProgram)
	data, err := os.ReadFile(filepath.Join(outDir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{
		`__ft "fasttrack/instrument/rt"`,
		"defer __ft.Boot()()",
		"__ft.Fork()",
		"__ft.Begin(__ft_parent)",
		"defer __ft.End()",
		"__ft.W(&x)",
		"__ft.W(&y)",
		"__ft.R(&y)",
		"__ft.R(&x)",
		"__ft.ChanSend(done)",
		"__ft.ChanRecv(done)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("instrumented source missing %q:\n%s", want, got)
		}
	}
	gomod, err := os.ReadFile(filepath.Join(outDir, "go.mod"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(gomod), "replace fasttrack => ") {
		t.Fatalf("go.mod missing replace directive:\n%s", gomod)
	}
}

func TestRewriteSyncCalls(t *testing.T) {
	res, outDir := instrumentSource(t, cleanProgram)
	data, err := os.ReadFile(filepath.Join(outDir, "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	for _, want := range []string{
		"__ft.Acquire(&mu)",
		"__ft.Release(&mu)",
		"__ft.WGDone(&wg)",
		"__ft.WGWait(&wg)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("instrumented source missing %q:\n%s", want, got)
		}
	}
	if res.Stats.SyncOps == 0 || res.Stats.Forks != 1 {
		t.Fatalf("unexpected stats: %+v", res.Stats)
	}
}

// runInstrumented builds and executes an instrumented module with the
// in-process monitor sink and returns the parsed report.
func runInstrumented(t *testing.T, src string) (races int) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not available")
	}
	_, outDir := instrumentSource(t, src)
	bin := filepath.Join(outDir, "prog")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Dir = outDir
	build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	report := filepath.Join(outDir, "report.json")
	run := exec.Command(bin)
	run.Env = append(os.Environ(), "FASTTRACK_MODE=local", "FASTTRACK_REPORT="+report)
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("instrumented run: %v\n%s", err, out)
	}
	data, err := os.ReadFile(report)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Tool   string `json:"tool"`
		Events int64  `json:"events"`
		Races  []struct {
			Var  uint64 `json:"var"`
			Kind string `json:"kind"`
		} `json:"races"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, data)
	}
	if rep.Events == 0 {
		t.Fatalf("report claims zero events:\n%s", data)
	}
	return len(rep.Races)
}

func TestInstrumentedRacyProgram(t *testing.T) {
	if races := runInstrumented(t, racyProgram); races != 1 {
		t.Fatalf("racy program: %d races, want exactly 1 (the y pair; x is channel-synchronized)", races)
	}
}

func TestInstrumentedCleanProgram(t *testing.T) {
	if races := runInstrumented(t, cleanProgram); races != 0 {
		t.Fatalf("clean program: %d races, want 0", races)
	}
}

func TestInstrumentedBufferedChannelSlack(t *testing.T) {
	if races := runInstrumented(t, chanProgram); races != 1 {
		t.Fatalf("buffered slack program: %d races, want exactly 1", races)
	}
}
