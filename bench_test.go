// Benchmarks regenerating the paper's evaluation via `go test -bench`.
// Each table/figure of Section 5 has a bench family:
//
//   - BenchmarkTable1/<tool>: slowdown comparison of the seven tools on
//     a representative workload mix (Table 1);
//   - BenchmarkTable2VCWork/<tool>: the vector-clock allocation and
//     operation counters behind Table 2, reported as metrics;
//   - BenchmarkTable3Granularity/<tool>/<granularity>: fine vs coarse
//     shadow locations (Table 3);
//   - BenchmarkRuleFastPaths/<rule>: the O(1) fast paths of Figure 5;
//   - BenchmarkCompose/<checker>/<filter>: the Section 5.2 prefilter
//     pipelines;
//   - BenchmarkEclipse/<tool>: the Section 5.3 large-workload run.
//
// The full paper-style tables (with per-benchmark rows and averages) are
// printed by cmd/racebench; these benches give the same comparisons in
// testing.B form.
package fasttrack_test

import (
	"fmt"
	"testing"

	"fasttrack"
	"fasttrack/trace"

	"fasttrack/internal/atomicity"
	"fasttrack/internal/rr"
	"fasttrack/internal/sim"
)

// table1Workloads is a representative subset covering the main pattern
// classes: thread-local (crypt), read-shared (raytracer), lock-heavy
// (tsp), and barrier-phased (sor).
var table1Workloads = []string{"crypt", "raytracer", "tsp", "sor"}

func workloadTraces(b *testing.B, scale float64, names []string) []trace.Trace {
	b.Helper()
	traces := make([]trace.Trace, 0, len(names))
	for _, name := range names {
		w, ok := sim.ByName(name)
		if !ok {
			b.Fatalf("unknown workload %q", name)
		}
		traces = append(traces, w.Trace(scale))
	}
	return traces
}

func replayAll(b *testing.B, toolName string, traces []trace.Trace, g fasttrack.Granularity) {
	b.Helper()
	events := 0
	for _, tr := range traces {
		events += len(tr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range traces {
			tool, err := fasttrack.NewTool(toolName, fasttrack.Hints{})
			if err != nil {
				b.Fatal(err)
			}
			fasttrack.Replay(tr, tool, g)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
}

// BenchmarkTable1 compares all seven tools on the workload mix.
func BenchmarkTable1(b *testing.B) {
	traces := workloadTraces(b, 0.3, table1Workloads)
	for _, tool := range []string{"Empty", "Eraser", "MultiRace", "Goldilocks", "BasicVC", "DJIT+", "FastTrack"} {
		b.Run(tool, func(b *testing.B) {
			replayAll(b, tool, traces, fasttrack.Fine)
		})
	}
}

// BenchmarkTable2VCWork reports the vector-clock counters of Table 2 as
// benchmark metrics for DJIT+ vs FastTrack.
func BenchmarkTable2VCWork(b *testing.B) {
	traces := workloadTraces(b, 0.3, table1Workloads)
	for _, toolName := range []string{"DJIT+", "FastTrack"} {
		b.Run(toolName, func(b *testing.B) {
			var alloc, ops int64
			events := 0
			for i := 0; i < b.N; i++ {
				alloc, ops, events = 0, 0, 0
				for _, tr := range traces {
					tool, err := fasttrack.NewTool(toolName, fasttrack.Hints{})
					if err != nil {
						b.Fatal(err)
					}
					fasttrack.Replay(tr, tool, fasttrack.Fine)
					st := tool.Stats()
					alloc += st.VCAlloc
					ops += st.VCOp
					events += len(tr)
				}
			}
			b.ReportMetric(float64(alloc), "VCs-allocated")
			b.ReportMetric(float64(ops), "VC-ops")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
		})
	}
}

// BenchmarkTable3Granularity compares fine vs coarse shadow locations.
func BenchmarkTable3Granularity(b *testing.B) {
	traces := workloadTraces(b, 0.3, table1Workloads)
	for _, toolName := range []string{"DJIT+", "FastTrack"} {
		for _, g := range []struct {
			name string
			g    fasttrack.Granularity
		}{{"fine", fasttrack.Fine}, {"coarse", fasttrack.Coarse}} {
			b.Run(toolName+"/"+g.name, func(b *testing.B) {
				replayAll(b, toolName, traces, g.g)
			})
		}
	}
}

// BenchmarkRuleFastPaths isolates the constant-time fast paths of
// Figure 5 (same-epoch reads/writes, read-shared reads, exclusive
// reads) plus the synchronization slow path, in ns/op.
func BenchmarkRuleFastPaths(b *testing.B) {
	b.Run("ReadSameEpoch", func(b *testing.B) {
		tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{Vars: 1})
		tool.HandleEvent(0, trace.Rd(0, 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tool.HandleEvent(i, trace.Rd(0, 0))
		}
	})
	b.Run("WriteSameEpoch", func(b *testing.B) {
		tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{Vars: 1})
		tool.HandleEvent(0, trace.Wr(0, 0))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tool.HandleEvent(i, trace.Wr(0, 0))
		}
	})
	b.Run("ReadShared", func(b *testing.B) {
		tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{Threads: 2, Vars: 1})
		tool.HandleEvent(0, trace.ForkOf(0, 1))
		tool.HandleEvent(1, trace.Rd(0, 0))
		tool.HandleEvent(2, trace.Rd(1, 0)) // inflate to read-shared
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tool.HandleEvent(i, trace.Rd(int32(i%2), 0))
		}
	})
	b.Run("ReadExclusiveRotating", func(b *testing.B) {
		// Alternating same-thread reads of two variables: exercises
		// [FT READ EXCLUSIVE] -> [FT READ SAME EPOCH] mixes.
		tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{Vars: 2})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tool.HandleEvent(i, trace.Rd(0, uint64(i%2)))
		}
	})
	b.Run("AcquireRelease", func(b *testing.B) {
		tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tool.HandleEvent(i, trace.Acq(0, 0))
			tool.HandleEvent(i, trace.Rel(0, 0))
		}
	})
}

// BenchmarkCompose runs the Section 5.2 pipelines on the tsp workload.
func BenchmarkCompose(b *testing.B) {
	w, _ := sim.ByName("tsp")
	tr := w.Trace(0.3)
	checkers := map[string]func() rr.Tool{
		"Atomizer":    func() rr.Tool { return atomicity.NewAtomizer() },
		"Velodrome":   func() rr.Tool { return atomicity.NewVelodrome() },
		"SingleTrack": func() rr.Tool { return atomicity.NewSingleTrack() },
	}
	for _, checker := range []string{"Atomizer", "Velodrome", "SingleTrack"} {
		for _, filter := range []string{"NONE", "TL", "ERASER", "DJIT+", "FASTTRACK"} {
			b.Run(checker+"/"+filter, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					var tool fasttrack.Tool = checkers[checker]()
					if filter != "NONE" {
						name := map[string]string{
							"TL": "TL", "ERASER": "Eraser",
							"DJIT+": "DJIT+", "FASTTRACK": "FastTrack",
						}[filter]
						pre, err := fasttrack.NewTool(name, fasttrack.Hints{})
						if err != nil {
							b.Fatal(err)
						}
						tool = fasttrack.Compose(pre.(fasttrack.Prefilter), tool)
					}
					fasttrack.Replay(tr, tool, fasttrack.Fine)
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(tr)), "ns/event")
			})
		}
	}
}

// BenchmarkEclipse runs the Section 5.3 tools over one Eclipse-shaped
// operation.
func BenchmarkEclipse(b *testing.B) {
	w, _ := sim.ByName("eclipse-import")
	tr := w.Trace(0.3)
	for _, tool := range []string{"Empty", "Eraser", "DJIT+", "FastTrack"} {
		b.Run(tool, func(b *testing.B) {
			replayAll(b, tool, []trace.Trace{tr}, fasttrack.Fine)
		})
	}
}

// BenchmarkThreadScaling is the ablation behind the epoch optimization:
// an identical per-thread workload at growing thread counts. FastTrack's
// ns/event stays flat while the vector-clock detectors' grows with n.
func BenchmarkThreadScaling(b *testing.B) {
	for _, threads := range []int{4, 16, 64} {
		p := sim.Benchmark{
			Seed: int64(300 + threads),
			Profile: sim.Profile{
				Name: "scale", Threads: threads,
				ThreadLocalVars: 200, ThreadLocalReps: 2, ReadsPerSweep: 3, WritesPerSweep: 1,
				RandomSweep: true,
				Locks:       threads, LockVars: threads * 8, LockReps: 60, CSAccesses: 6,
				SharedVars: 600, SharedReps: 3,
			},
		}
		tr := p.Trace(1)
		for _, tool := range []string{"FastTrack", "DJIT+", "BasicVC"} {
			b.Run(fmt.Sprintf("%s/threads=%d", tool, threads), func(b *testing.B) {
				replayAll(b, tool, []trace.Trace{tr}, fasttrack.Fine)
			})
		}
	}
}

// BenchmarkMonitorOverhead measures the thread-safe online front end on
// the locked-counter pattern.
func BenchmarkMonitorOverhead(b *testing.B) {
	m := fasttrack.NewMonitor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Acquire(0, 0)
		m.Read(0, 1)
		m.Write(0, 1)
		m.Release(0, 0)
	}
}
