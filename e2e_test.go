package fasttrack_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the command binaries into a shared temp dir.
var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "fasttrack-bin")
		if buildErr != nil {
			return
		}
		for _, tool := range []string{"racedetect", "tracegen", "traceshrink", "racebench", "minirun"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool)
			var stderr bytes.Buffer
			cmd.Stderr = &stderr
			if err := cmd.Run(); err != nil {
				buildErr = err
				t.Logf("building %s: %v\n%s", tool, err, stderr.String())
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("building command binaries: %v", buildErr)
	}
	return binDir
}

func run(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binaries(t), bin), args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out.String())
	}
	return out.String(), code
}

// TestEndToEndPipeline drives tracegen -> racedetect -> traceshrink on
// the hedc workload, the full command-line workflow a user would run.
func TestEndToEndPipeline(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "hedc.trace")

	out, code := run(t, "tracegen", "-workload", "hedc", "-scale", "0.2", "-format", "binary", "-o", tracePath)
	if code != 0 {
		t.Fatalf("tracegen failed (%d): %s", code, out)
	}

	out, code = run(t, "racedetect", "-all", tracePath)
	if code != 1 {
		t.Fatalf("racedetect exit = %d, want 1 (races found): %s", code, out)
	}
	if !strings.Contains(out, "FastTrack: 3 warning(s)") {
		t.Errorf("expected 3 FastTrack warnings:\n%s", out)
	}
	if !strings.Contains(out, "Goldilocks: 0 warning(s)") {
		t.Errorf("expected Goldilocks to miss the hedc races:\n%s", out)
	}
	if !strings.Contains(out, "Eraser: 2 warning(s)") {
		t.Errorf("expected 2 Eraser warnings:\n%s", out)
	}

	// Explanation mode pinpoints both halves of each race.
	out, code = run(t, "racedetect", "-explain", tracePath)
	if code != 1 {
		t.Fatalf("explain exit = %d:\n%s", code, out)
	}
	for _, want := range []string{"first access:", "second access:", "CONCURRENT"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}

	// Streaming mode agrees.
	out, code = run(t, "racedetect", "-stream", "-tool", "FastTrack", tracePath)
	if code != 1 || !strings.Contains(out, "FastTrack: 3 warning(s)") {
		t.Errorf("streaming run (%d):\n%s", code, out)
	}

	// Shrink to a minimal witness.
	minPath := filepath.Join(dir, "min.trace")
	out, code = run(t, "traceshrink", "-warns", "FastTrack", "-o", minPath, tracePath)
	if code != 0 {
		t.Fatalf("traceshrink failed (%d): %s", code, out)
	}
	min, err := os.ReadFile(minPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(min)), "\n") + 1
	if lines > 4 {
		t.Errorf("minimized witness has %d events, want <= 4:\n%s", lines, min)
	}
}

// TestRacedetectCleanTrace: a race-free workload exits 0.
func TestRacedetectCleanTrace(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "philo.trace")
	if out, code := run(t, "tracegen", "-workload", "philo", "-scale", "0.2", "-o", tracePath); code != 0 {
		t.Fatalf("tracegen failed: %s", out)
	}
	out, code := run(t, "racedetect", "-tool", "FastTrack", tracePath)
	if code != 0 || !strings.Contains(out, "0 warning(s)") {
		t.Errorf("exit=%d:\n%s", code, out)
	}
}

// TestRacedetectRejectsInfeasible: validation failures are fatal.
func TestRacedetectRejectsInfeasible(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(tracePath, []byte("rel 0 m1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "racedetect", tracePath)
	if code != 2 || !strings.Contains(out, "infeasible") {
		t.Errorf("exit=%d:\n%s", code, out)
	}
}

// TestTracegenList and racedetect -list enumerate workloads and tools.
func TestListFlags(t *testing.T) {
	out, code := run(t, "tracegen", "-list")
	if code != 0 || !strings.Contains(out, "eclipse-startup") || !strings.Contains(out, "tsp") {
		t.Errorf("tracegen -list (%d):\n%s", code, out)
	}
	out, code = run(t, "racedetect", "-list")
	if code != 0 || !strings.Contains(out, "FastTrack") || !strings.Contains(out, "Goldilocks") {
		t.Errorf("racedetect -list (%d):\n%s", code, out)
	}
}

// TestRacebenchSmoke regenerates one small table.
func TestRacebenchSmoke(t *testing.T) {
	out, code := run(t, "racebench", "-table", "2", "-scale", "0.05", "-runs", "1")
	if code != 0 || !strings.Contains(out, "Allocation ratio") {
		t.Errorf("racebench (%d):\n%s", code, out)
	}
	out, code = run(t, "racebench", "-table", "accordion")
	if code != 0 || !strings.Contains(out, "Reduction") {
		t.Errorf("racebench accordion (%d):\n%s", code, out)
	}
}

// TestMinirunScheduleExploration runs the racy and fixed counters of the
// mini language across many schedules: the racy one must warn on every
// schedule, the fixed one on none.
func TestMinirunScheduleExploration(t *testing.T) {
	out, code := run(t, "minirun", "-seeds", "40", "examples/minilang/counter.mini")
	if code != 1 {
		t.Fatalf("racy counter exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "detector warned on 40") {
		t.Errorf("expected warnings on all 40 schedules:\n%s", out)
	}
	out, code = run(t, "minirun", "-seeds", "40", "examples/minilang/counter_fixed.mini")
	if code != 0 || !strings.Contains(out, "detector warned on 0") {
		t.Errorf("fixed counter (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "output [2]                  x40") {
		t.Errorf("fixed counter must always print 2:\n%s", out)
	}
}

// TestMinirunExhaustiveExploration verifies the systematic enumerator's
// exact counts on the racy counter and the Velodrome serializability
// split on the atomic example.
func TestMinirunExhaustiveExploration(t *testing.T) {
	out, code := run(t, "minirun", "-explore", "100000", "examples/minilang/counter.mini")
	if code != 1 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	if !strings.Contains(out, "EXHAUSTIVE: 2728 schedules; detector warned on 2728") {
		t.Errorf("unexpected exploration summary:\n%s", out)
	}
	out, code = run(t, "minirun", "-explore", "100000", "-tool", "Velodrome",
		"examples/minilang/atomic.mini")
	if code != 1 {
		t.Fatalf("exit = %d:\n%s", code, out)
	}
	for _, want := range []string{
		"EXHAUSTIVE: 252 schedules; detector warned on 200",
		"output [3]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

// TestMinirunSingleRunAndTraceExport runs once, exports the trace, and
// feeds it to racedetect.
func TestMinirunSingleRunAndTraceExport(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "run.trace")
	out, code := run(t, "minirun", "-seed", "5", "-trace-out", tracePath,
		"examples/minilang/counter.mini")
	if code != 1 || !strings.Contains(out, "RACE:") {
		t.Fatalf("minirun (%d):\n%s", code, out)
	}
	out, code = run(t, "racedetect", "-all", tracePath)
	if code != 1 || !strings.Contains(out, "FastTrack: 1 warning(s)") {
		t.Errorf("racedetect on exported trace (%d):\n%s", code, out)
	}
}

// TestRandomTracegen exercises the -random mode end to end.
func TestRandomTracegen(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "rand.trace")
	out, code := run(t, "tracegen", "-random", "-events", "300", "-threads", "4", "-seed", "7", "-o", tracePath)
	if code != 0 {
		t.Fatalf("tracegen -random failed: %s", out)
	}
	if out, code := run(t, "racedetect", "-all", "-stats", tracePath); code > 1 {
		t.Errorf("racedetect on random trace (%d):\n%s", code, out)
	}
}

// TestMinirunFormatMode: -fmt pretty-prints a program that still runs.
func TestMinirunFormatMode(t *testing.T) {
	dir := t.TempDir()
	out, code := run(t, "minirun", "-fmt", "examples/minilang/counter_fixed.mini")
	if code != 0 || !strings.Contains(out, "thread inc1 {") {
		t.Fatalf("fmt (%d):\n%s", code, out)
	}
	formatted := filepath.Join(dir, "fmt.mini")
	if err := os.WriteFile(formatted, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, "minirun", "-seed", "3", formatted)
	if code != 0 || !strings.Contains(out, "2") {
		t.Errorf("formatted program run (%d):\n%s", code, out)
	}
}
