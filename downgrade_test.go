package fasttrack

import (
	"testing"

	"fasttrack/trace"
)

// hostileTool panics in every method, including the accessors — the
// worst-behaved detector the pipeline must survive.
type hostileTool struct{}

func (hostileTool) Name() string                 { panic("hostile Name") }
func (hostileTool) HandleEvent(int, trace.Event) { panic("hostile HandleEvent") }
func (hostileTool) Races() []Report              { panic("hostile Races") }
func (hostileTool) Stats() Stats                 { panic("hostile Stats") }

// TestMonitorQueriesSurviveToolDowngrade: after the panic budget is
// spent and the tool is downgraded, the Monitor's queries must route
// through the downgrade wrapper (whose recover guards absorb the
// hostile accessors) rather than the original tool. Reading the tool
// directly used to panic right through Races and Stats.
func TestMonitorQueriesSurviveToolDowngrade(t *testing.T) {
	m := NewMonitor(WithTool(hostileTool{}))
	for i := 0; i < 32; i++ {
		m.Write(0, uint64(i)) // each delivery panics; quarantine absorbs them
	}

	h := m.Health()
	if !h.ToolDisabled {
		t.Fatalf("tool not downgraded after %d panics", h.Panics)
	}

	// None of these may panic, and the event path must stay open.
	if races := m.Races(); len(races) != 0 {
		t.Errorf("Races() after downgrade = %v", races)
	}
	st := m.Stats()
	if st.Panics == 0 {
		t.Error("Stats() after downgrade lost the panic accounting")
	}
	m.Write(0, 999)
	m.Acquire(0, 1)
	m.Release(0, 1)
	if snap := m.Metrics(); snap.Counter("rr.quarantine.panics") == 0 {
		t.Error("Metrics() after downgrade lost the panic counter")
	}
}
