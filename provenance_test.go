package fasttrack

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fasttrack/internal/chaos"
	"fasttrack/internal/sim"
	"fasttrack/trace"
)

// replayProv feeds tr through a fresh FastTrack monitor and returns the
// plain and detailed race snapshots.
func replayProv(tr trace.Trace, shards int, provenance bool) ([]Report, []DetailedReport) {
	opts := []MonitorOption{WithHints(Hints{Provenance: provenance})}
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}
	m := NewMonitor(opts...)
	for _, e := range tr {
		m.Ingest(e)
	}
	return m.Races(), m.DetailedRaces()
}

// assertProvenanceEquivalent is the enrichment soundness property: the
// flight recorder must never change which races are reported — enabling
// it yields the identical Report sequence (not just set) as a plain
// run, on the serial and sharded paths alike — and every enriched
// report must describe the race its embedded Report names.
func assertProvenanceEquivalent(t *testing.T, label string, tr trace.Trace, shards int) {
	t.Helper()
	plainRaces, plainDetails := replayProv(tr, shards, false)
	provRaces, provDetails := replayProv(tr, shards, true)

	// Provenance-off runs keep plain reports: no recorder, PrevIndex
	// stays -1 (detailed reports are off by default).
	for _, d := range plainDetails {
		if d.Explanation != "" || len(d.AccessClock) != 0 {
			t.Errorf("%s: recorder off but report enriched: %+v", label, d)
		}
	}

	if len(provRaces) != len(plainRaces) {
		t.Fatalf("%s: provenance changed the race count: %d with, %d without",
			label, len(provRaces), len(plainRaces))
	}
	for i := range plainRaces {
		p, q := plainRaces[i], provRaces[i]
		// The recorder implies detailed reports, which fill PrevIndex;
		// everything else must match field for field.
		q.PrevIndex = p.PrevIndex
		if p != q {
			t.Errorf("%s: race %d diverges\n plain: %+v\n prov:  %+v", label, i, p, q)
		}
	}

	if len(provDetails) != len(provRaces) {
		t.Fatalf("%s: %d detailed reports for %d races", label, len(provDetails), len(provRaces))
	}
	for i, d := range provDetails {
		if d.Report != provRaces[i] {
			t.Errorf("%s: detail %d embeds %+v, want %+v", label, i, d.Report, provRaces[i])
		}
		if d.Explanation == "" || d.FailedCheck == "" || len(d.AccessClock) == 0 {
			t.Errorf("%s: detail %d missing evidence: %+v", label, i, d)
		}
		want := fmt.Sprintf("on x%d", d.Var)
		if !strings.Contains(d.Explanation, want) {
			t.Errorf("%s: detail %d explanation does not name its variable: %q", label, i, d.Explanation)
		}
	}
}

// TestProvenanceEquivalenceSim: paper-shaped benchmark workloads and
// random feasible traces, serial and sharded.
func TestProvenanceEquivalenceSim(t *testing.T) {
	for _, shards := range []int{1, 8} {
		for _, b := range sim.Benchmarks()[:4] {
			assertProvenanceEquivalent(t, fmt.Sprintf("%s/shards=%d", b.Name, shards), b.Trace(0.05), shards)
		}
		cfg := sim.DefaultRandomConfig()
		cfg.Events = 600
		cfg.Vars = 12
		for seed := int64(1); seed <= 6; seed++ {
			tr := sim.RandomTrace(rand.New(rand.NewSource(seed)), cfg)
			assertProvenanceEquivalent(t, fmt.Sprintf("random/seed=%d/shards=%d", seed, shards), tr, shards)
		}
	}
}

// TestProvenanceEquivalenceChaos: the property must also hold on
// corrupted streams, where the dispatcher repairs or intercepts
// malformed events before they reach the detector.
func TestProvenanceEquivalenceChaos(t *testing.T) {
	base := sim.RandomTrace(rand.New(rand.NewSource(7)), sim.DefaultRandomConfig())
	for _, shards := range []int{1, 8} {
		for _, mode := range chaos.Modes() {
			raw := chaos.Mutate(base, mode, rand.New(rand.NewSource(3)))
			var tr trace.Trace
			sc := trace.NewScanner(bytes.NewReader(raw))
			for sc.Scan() {
				tr = append(tr, sc.Event())
			}
			if len(tr) == 0 {
				continue
			}
			assertProvenanceEquivalent(t, fmt.Sprintf("chaos/%s/shards=%d", mode, shards), tr, shards)
		}
	}
}

// TestProvenanceSurvivesClose: the detailed snapshot outlives Close,
// like races and stats do.
func TestProvenanceSurvivesClose(t *testing.T) {
	m := NewMonitor(WithHints(Hints{Provenance: true}))
	m.Fork(0, 1)
	m.Write(0, 3)
	m.Write(1, 3)
	live := m.DetailedRaces()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	final := m.DetailedRaces()
	if len(live) != 1 || len(final) != 1 {
		t.Fatalf("detailed counts: live %d, final %d, want 1", len(live), len(final))
	}
	if live[0].Explanation == "" || live[0].Explanation != final[0].Explanation {
		t.Errorf("snapshot diverges across Close:\n live:  %q\n final: %q",
			live[0].Explanation, final[0].Explanation)
	}
}
