// Package fasttrack is a Go implementation of FastTrack, the efficient
// and precise dynamic race detector of Flanagan & Freund (PLDI 2009),
// together with the complete ecosystem the paper evaluates it in: the
// DJIT+, BasicVC, Eraser, MultiRace and Goldilocks comparison detectors,
// a RoadRunner-style event dispatch framework with prefilter composition,
// Atomizer/Velodrome/SingleTrack-style downstream checkers, and a
// benchmark harness that regenerates every table and figure of the
// paper's evaluation.
//
// # Quick start
//
// Annotate a concurrent program with a Monitor and let FastTrack watch
// the accesses:
//
//	m := fasttrack.NewMonitor()
//	m.Fork(0, 1) // thread 0 starts thread 1
//	go func() {
//		m.Write(1, addrCounter) // thread 1 writes the counter
//		...
//	}()
//	m.Write(0, addrCounter) // thread 0 writes it concurrently: race!
//	for _, r := range m.Races() {
//		fmt.Println(r)
//	}
//
// Or analyze a recorded trace with any of the seven tools:
//
//	tool, _ := fasttrack.NewTool("FastTrack", fasttrack.Hints{})
//	fasttrack.Replay(tr, tool, fasttrack.Fine)
//	fmt.Println(tool.Races())
//
// # Precision
//
// FastTrack, DJIT+ and BasicVC are precise: they warn if and only if the
// observed trace contains two concurrent conflicting accesses (the
// paper's Theorem 1, property-tested in internal/conformance against an
// independent happens-before oracle). Eraser may both false-alarm and
// miss races; MultiRace and Goldilocks never false-alarm but may miss
// races hidden in thread-local initialization, faithfully reproducing
// the behaviour reported in the paper's Table 1.
package fasttrack
